//! Parallel primitives: map / filter-map / flat-map, prefix sums, sorting,
//! deduplication and group-by. These mirror the PRAM toolkit the paper
//! assumes in its preliminaries (§2): a parallel sort stands in for the
//! \[PP01\] batch BST operations and sort-based grouping stands in for the
//! \[GMV91\] parallel hash table batch interface.

use crate::GRAIN;
use rayon::prelude::*;

/// Parallel `map` over a slice; sequential below [`GRAIN`].
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync + Send) -> Vec<R> {
    if items.len() < GRAIN {
        items.iter().map(f).collect()
    } else {
        items.par_iter().map(f).collect()
    }
}

/// Parallel indexed map: `f(i, &items[i])`.
pub fn par_map_idx<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync + Send,
) -> Vec<R> {
    if items.len() < GRAIN {
        items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
    } else {
        items.par_iter().enumerate().map(|(i, t)| f(i, t)).collect()
    }
}

/// Parallel filter-map preserving input order.
pub fn par_filter_map<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(&T) -> Option<R> + Sync + Send,
) -> Vec<R> {
    if items.len() < GRAIN {
        items.iter().filter_map(f).collect()
    } else {
        items.par_iter().filter_map(f).collect()
    }
}

/// Parallel flat-map preserving input order.
pub fn par_flat_map<T: Sync, R: Send>(
    items: &[T],
    f: impl Fn(&T) -> Vec<R> + Sync + Send,
) -> Vec<R> {
    if items.len() < GRAIN {
        items.iter().flat_map(f).collect()
    } else {
        items.par_iter().flat_map_iter(f).collect()
    }
}

/// Parallel map into a caller-owned output slice: `out[i] = f(&items[i])`.
/// Sequential below [`GRAIN`]. Unlike [`par_map`] this allocates nothing,
/// which makes it the fan-out primitive for steady-state batch query
/// loops (the caller resizes `out` once and reuses it).
///
/// Panics if `items` and `out` differ in length.
pub fn par_map_slice<T: Sync, R: Send>(
    items: &[T],
    out: &mut [R],
    f: impl Fn(&T) -> R + Sync + Send,
) {
    assert_eq!(
        items.len(),
        out.len(),
        "par_map_slice: input/output length mismatch"
    );
    if items.len() < GRAIN {
        for (o, t) in out.iter_mut().zip(items) {
            *o = f(t);
        }
    } else {
        out.par_iter_mut()
            .zip(items.par_iter())
            .for_each(|(o, t)| *o = f(t));
    }
}

/// Parallel for-each over mutable chunks of size 1 — i.e. a data-parallel
/// loop with exclusive access to each element.
pub fn par_for_each_mut<T: Send>(items: &mut [T], f: impl Fn(&mut T) + Sync + Send) {
    if items.len() < GRAIN {
        items.iter_mut().for_each(f);
    } else {
        items.par_iter_mut().for_each(f);
    }
}

/// Task-parallel for-each: like [`par_for_each_mut`] but *without* the
/// [`GRAIN`] cutoff — every element is treated as a coarse task worth a
/// worker of its own. This is the fan-out primitive for dispatchers that
/// drive a handful of heavyweight structures (e.g. one batch-dynamic
/// shard per element): the element count is tiny, the per-element work
/// is not. Runs sequentially when the effective thread count is 1 or
/// there is at most one task.
pub fn par_for_each_task<T: Send>(items: &mut [T], f: impl Fn(&mut T) + Sync + Send) {
    if rayon::current_num_threads() <= 1 || items.len() <= 1 {
        items.iter_mut().for_each(f);
    } else {
        items.par_iter_mut().for_each(f);
    }
}

/// Exclusive (left) prefix sums; returns a vector of length `n + 1` whose
/// last entry is the total. Work O(n), depth O(log n).
pub fn prefix_sums(items: &[usize]) -> Vec<usize> {
    let n = items.len();
    let mut out = Vec::with_capacity(n + 1);
    if n < GRAIN {
        let mut acc = 0usize;
        out.push(0);
        for &x in items {
            acc += x;
            out.push(acc);
        }
        return out;
    }
    // Block-wise two-pass scan.
    let nblocks = rayon::current_num_threads().max(1) * 4;
    let block = n.div_ceil(nblocks);
    let block_sums: Vec<usize> = items
        .par_chunks(block)
        .map(|c| c.iter().sum::<usize>())
        .collect();
    let mut block_offsets = Vec::with_capacity(block_sums.len() + 1);
    let mut acc = 0usize;
    block_offsets.push(0);
    for &s in &block_sums {
        acc += s;
        block_offsets.push(acc);
    }
    out.resize(n + 1, 0);
    out[n] = acc;
    let out_slices: Vec<&mut [usize]> = out[..n].chunks_mut(block).collect();
    out_slices
        .into_par_iter()
        .zip(items.par_chunks(block))
        .enumerate()
        .for_each(|(b, (dst, src))| {
            let mut acc = block_offsets[b];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = acc;
                acc += s;
            }
        });
    out
}

/// Parallel (unstable) sort.
pub fn par_sort<T: Ord + Send>(items: &mut [T]) {
    if items.len() < GRAIN {
        items.sort_unstable();
    } else {
        items.par_sort_unstable();
    }
}

/// Parallel sort by key.
pub fn par_sort_by_key<T: Send, K: Ord + Send>(
    items: &mut [T],
    key: impl Fn(&T) -> K + Sync + Send,
) {
    if items.len() < GRAIN {
        items.sort_unstable_by_key(key);
    } else {
        items.par_sort_unstable_by_key(key);
    }
}

/// Sort + dedup: returns the distinct elements in ascending order.
pub fn sort_dedup<T: Ord + Send + Clone>(mut items: Vec<T>) -> Vec<T> {
    par_sort(&mut items);
    items.dedup();
    items
}

/// Sort-based group-by ("semisort"): groups `(key, value)` pairs by key
/// and returns `(key, values)` groups in ascending key order. This is the
/// batch-friendly replacement for iterating a parallel hash table.
/// Work O(n log n), depth O(log² n).
pub fn group_pairs<K: Ord + Send + Clone, V: Send>(mut items: Vec<(K, V)>) -> Vec<(K, Vec<V>)> {
    if items.len() < GRAIN {
        items.sort_by(|a, b| a.0.cmp(&b.0));
    } else {
        items.par_sort_by(|a, b| a.0.cmp(&b.0));
    }
    let mut out: Vec<(K, Vec<V>)> = Vec::new();
    for (k, v) in items {
        match out.last_mut() {
            Some((lk, vs)) if *lk == k => vs.push(v),
            _ => out.push((k, vec![v])),
        }
    }
    out
}

/// Parallel maximum by key; `None` on empty input.
pub fn par_max_by_key<T: Sync, K: Ord + Send>(
    items: &[T],
    key: impl Fn(&T) -> K + Sync + Send,
) -> Option<usize> {
    if items.is_empty() {
        return None;
    }
    if items.len() < GRAIN {
        return (0..items.len()).max_by_key(|&i| key(&items[i]));
    }
    (0..items.len())
        .into_par_iter()
        .max_by_key(|&i| key(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_small_and_large() {
        let small: Vec<u32> = (0..10).collect();
        assert_eq!(
            par_map(&small, |x| x * 2),
            (0..10).map(|x| x * 2).collect::<Vec<_>>()
        );
        let large: Vec<u32> = (0..10_000).collect();
        assert_eq!(par_map(&large, |x| x + 1)[9_999], 10_000);
    }

    #[test]
    fn map_slice_matches_map() {
        for n in [0usize, 10, 5000] {
            let xs: Vec<u32> = (0..n as u32).collect();
            let mut out = vec![0u32; n];
            par_map_slice(&xs, &mut out, |&x| x.wrapping_mul(3) ^ 7);
            assert_eq!(out, par_map(&xs, |&x| x.wrapping_mul(3) ^ 7), "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn map_slice_rejects_mismatched_lengths() {
        let xs = [1u32, 2, 3];
        let mut out = vec![0u32; 2];
        par_map_slice(&xs, &mut out, |&x| x);
    }

    #[test]
    fn filter_map_keeps_order() {
        let xs: Vec<u32> = (0..5000).collect();
        let evens = par_filter_map(&xs, |&x| (x % 2 == 0).then_some(x));
        assert_eq!(evens.len(), 2500);
        assert!(evens.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn prefix_sums_match_sequential() {
        for n in [0usize, 1, 5, 3000, 10_000] {
            let xs: Vec<usize> = (0..n).map(|i| i % 7).collect();
            let got = prefix_sums(&xs);
            let mut want = vec![0usize];
            for &x in &xs {
                want.push(want.last().unwrap() + x);
            }
            assert_eq!(got, want, "n = {n}");
        }
    }

    #[test]
    fn sort_dedup_works() {
        let xs = vec![3u32, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        assert_eq!(sort_dedup(xs), vec![1, 2, 3, 4, 5, 6, 9]);
    }

    #[test]
    fn group_pairs_groups() {
        let items = vec![(2u32, 'a'), (1, 'b'), (2, 'c'), (1, 'd'), (3, 'e')];
        let groups = group_pairs(items);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, 1);
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[2], (3, vec!['e']));
    }

    #[test]
    fn max_by_key_finds_max() {
        let xs: Vec<i64> = (0..5000).map(|i| (i * 37) % 4999).collect();
        let i = par_max_by_key(&xs, |&x| x).unwrap();
        assert_eq!(xs[i], *xs.iter().max().unwrap());
        assert_eq!(par_max_by_key::<i64, i64>(&[], |&x| x), None);
    }

    #[test]
    fn for_each_task_runs_below_grain() {
        // A handful of coarse tasks must all execute even though the
        // element count is far below GRAIN, at any thread count.
        for threads in [1, 4] {
            let mut slots = vec![0u64; 7];
            crate::run_with_threads(threads, || {
                par_for_each_task(&mut slots, |s| *s += 1);
            });
            assert!(slots.iter().all(|&s| s == 1), "threads = {threads}");
        }
    }

    #[test]
    fn flat_map_order() {
        let xs: Vec<u32> = (0..3000).collect();
        let out = par_flat_map(&xs, |&x| vec![x, x]);
        assert_eq!(out.len(), 6000);
        assert_eq!(&out[0..4], &[0, 0, 1, 1]);
    }
}

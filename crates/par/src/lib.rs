//! Work-depth style parallel primitives used throughout the batch-dynamic
//! spanner implementation.
//!
//! The paper assumes a CRCW PRAM; on a multicore we realize the same
//! algorithmic structure with rayon's fork-join pool. Every primitive here
//! falls back to a sequential loop below [`GRAIN`] elements, so small
//! batches never pay scheduling overhead — this is what makes the
//! amortized *work* bounds observable in benchmarks rather than being
//! drowned by constant factors.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod alloc_counter;
pub mod counters;
pub mod pool;
pub mod prim;
pub mod sync;

pub use alloc_counter::CountingAlloc;
pub use counters::WorkCounter;
pub use pool::{run_with_threads, threads_available};
pub use prim::*;

/// Below this many items, parallel primitives run sequentially.
pub const GRAIN: usize = 2048;

//! A counting [`GlobalAlloc`] wrapper over the system allocator, shared
//! by the zero-alloc delta-path test (`tests/alloc.rs` in the facade)
//! and the `bench_pr3` snapshot so both count with identical rules
//! (every `alloc`/`alloc_zeroed`/`realloc` call is one event; `dealloc`
//! is free).
//!
//! Each binary still declares its own registration:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: bds_par::CountingAlloc = bds_par::CountingAlloc;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counting allocator; register as `#[global_allocator]`.
pub struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Total allocation events since process start (monotone).
pub fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

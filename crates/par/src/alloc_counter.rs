//! A counting [`GlobalAlloc`] wrapper over the system allocator, shared
//! by the zero-alloc delta-path test (`tests/alloc.rs` in the facade)
//! and the `bench_pr3` snapshot so both count with identical rules
//! (every `alloc`/`alloc_zeroed`/`realloc` call is one event; `dealloc`
//! is free).
//!
//! Each binary still declares its own registration:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: bds_par::CountingAlloc = bds_par::CountingAlloc;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counting allocator; register as `#[global_allocator]`.
pub struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// Const-initialized and `Drop`-free, so accessing it inside the
// allocator can never itself allocate or recurse.
thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Total allocation events since process start (monotone), all threads.
pub fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Allocation events performed by the *calling thread* (monotone).
///
/// Zero-alloc assertions should diff this counter, not
/// [`allocations`]: the process-wide count picks up whatever other
/// threads happen to allocate inside the measured window (the libtest
/// harness thread is enough to trip an `== 0` assertion sporadically).
pub fn thread_allocations() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

#[inline]
fn count() {
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

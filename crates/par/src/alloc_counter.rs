//! A counting [`GlobalAlloc`] wrapper over the system allocator, shared
//! by the zero-alloc delta-path test (`tests/alloc.rs` in the facade)
//! and the `bench_pr3` snapshot so both count with identical rules
//! (every `alloc`/`alloc_zeroed`/`realloc` call is one event; `dealloc`
//! is free).
//!
//! Each binary still declares its own registration:
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: bds_par::CountingAlloc = bds_par::CountingAlloc;
//! ```

// bds:allow-file(facade-bypass): the counting allocator runs *inside*
// alloc; its static must be const-initialized and its accesses must
// never touch instrumented model state (which allocates), so it stays
// on raw std atomics in every build.
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counting allocator; register as `#[global_allocator]`.
pub struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// Const-initialized and `Drop`-free, so accessing it inside the
// allocator can never itself allocate or recurse.
thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Total allocation events since process start (monotone), all threads.
pub fn allocations() -> u64 {
    // ordering: monotone event counter read for diagnostics only; no
    // other memory is published through it, so Relaxed suffices.
    ALLOCS.load(Ordering::Relaxed)
}

/// Allocation events performed by the *calling thread* (monotone).
///
/// Zero-alloc assertions should diff this counter, not
/// [`allocations`]: the process-wide count picks up whatever other
/// threads happen to allocate inside the measured window (the libtest
/// harness thread is enough to trip an `== 0` assertion sporadically).
pub fn thread_allocations() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

#[inline]
fn count() {
    // ordering: pure event count; nothing synchronizes-with it, and
    // fetch_add keeps it exact under contention either way.
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
}

// SAFETY: every method delegates verbatim to `System`, which upholds
// the GlobalAlloc contract; the counter bump on the side touches no
// allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        // SAFETY: caller obligations (non-zero-sized `layout`) are
        // passed through unchanged to the system allocator.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        // SAFETY: as `alloc`; delegated with the caller's layout.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        // SAFETY: `ptr`/`layout` pair comes from the caller, who must
        // have obtained it from this allocator (same contract System
        // requires).
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: delegated; the caller guarantees `ptr` was allocated
        // here with `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

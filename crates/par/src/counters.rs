//! Lightweight atomic work counters.
//!
//! The paper's results are *amortized work* bounds (e.g. O(k log² n) per
//! updated edge for Theorem 1.1). Wall-clock time on two cores is a noisy
//! proxy for work, so the data structures count their own primitive
//! operations (scan steps, tree rotations, hash operations) into these
//! counters and the benchmark harness reports operations per update —
//! directly comparable against the claimed bounds.

use crate::sync::atomic::{AtomicU64, Ordering};

/// A relaxed atomic counter. Cheap enough to leave enabled in release
/// builds; all accesses use `Ordering::Relaxed` because counters are only
/// read after the parallel region joins.
#[derive(Debug)]
pub struct WorkCounter(AtomicU64);

impl Default for WorkCounter {
    fn default() -> Self {
        Self(AtomicU64::new(0))
    }
}

impl WorkCounter {
    // The facade's model-build atomic registers a location with the
    // live exploration, so its constructor cannot be `const`; counters
    // embedded in structures built inside a model still work, while
    // std builds keep the const constructor.
    #[cfg(not(bds_model))]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    #[cfg(bds_model)]
    pub fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    #[inline]
    pub fn add(&self, n: u64) {
        // ordering: Relaxed — statistics tally; exactness comes from
        // the RMW, and nothing synchronizes-with the counter.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        // ordering: Relaxed — diagnostic read; may lag concurrent adds.
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) -> u64 {
        // ordering: Relaxed — atomic take of the tally, same regime.
        self.0.swap(0, Ordering::Relaxed)
    }
}

impl Clone for WorkCounter {
    fn clone(&self) -> Self {
        Self(AtomicU64::new(self.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn counts_across_threads() {
        let c = WorkCounter::new();
        (0..10_000u64).into_par_iter().for_each(|_| c.incr());
        assert_eq!(c.get(), 10_000);
        assert_eq!(c.reset(), 10_000);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn clone_snapshots_value() {
        let c = WorkCounter::new();
        c.add(7);
        let d = c.clone();
        c.add(1);
        assert_eq!(d.get(), 7);
        assert_eq!(c.get(), 8);
    }
}

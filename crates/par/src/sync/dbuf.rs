//! Pinned double-buffering: the wait-free-read / single-writer view
//! publication protocol behind `bds_graph`'s serving front-end,
//! extracted onto the [`crate::sync`] facade so the exact code the
//! product runs is what the mini-loom model checker proves correct.
//!
//! # Protocol
//!
//! Two slots hold a *front* (served) and a *back* (writer-owned) copy
//! of the state. Readers pin the front slot with a counter; the single
//! writer mutates only the back slot, and only while that slot's pin
//! count is zero. Publication is one `front` index store.
//!
//! Reader (`DoubleBuf::pin`):
//! 1. load `front` → `f`
//! 2. `pins[f] += 1`
//! 3. re-load `front`; if it still equals `f` the pin is stable —
//!    the writer cannot have started mutating slot `f`, because a
//!    publish moving `front` *away from* `f` must happen before the
//!    writer next waits for `pins[f] == 0`, and our increment is now
//!    visible to that wait. Otherwise undo the pin and retry.
//!
//! Writer ([`BufWriter`]):
//! 1. wait until `pins[back] == 0` (stragglers from before the last
//!    publish drain out; new readers pin the other slot)
//! 2. mutate the back slot exclusively
//! 3. publish: store `front = back`; the old front becomes the new
//!    back, to be caught up on the *next* cycle (deferred catch-up)
//!
//! Every atomic here is `SeqCst`. The recheck in step 3 of the reader
//! needs the pin increment and both `front` loads to be in a single
//! total order with the writer's publish store and pin wait — with
//! weaker orderings the increment could become visible after the
//! writer's `pins[f]` check, letting the writer mutate a slot a reader
//! believes it has pinned. The model tests in this module (run with
//! `RUSTFLAGS="--cfg bds_model"`) exhaustively enumerate the
//! interleavings and fail on exactly that kind of weakening — see the
//! seeded-mutation smoke in CI.

use super::atomic::{AtomicUsize, Ordering};
use super::cell::UnsafeCell;
use super::{thread, Arc};

/// The shared double buffer: two slots, a pin count per slot, and the
/// index of the slot currently served to readers.
pub struct DoubleBuf<T> {
    slots: [UnsafeCell<T>; 2],
    pins: [AtomicUsize; 2],
    front: AtomicUsize,
}

// SAFETY: the pin/publish protocol guarantees that a slot reachable
// through `&DoubleBuf` is either (a) the front slot, handed out only
// as `&T` to pinned readers (requires `T: Sync` for cross-thread
// shared reads), or (b) the back slot, mutated only by the unique
// `BufWriter` and only while its pin count is zero, with the pin
// counter handshake ordering every reader access before the writer's
// mutation (requires `T: Send` for the ownership hand-off between
// reader and writer threads).
unsafe impl<T: Send + Sync> Sync for DoubleBuf<T> {}
// SAFETY: moving the buffer between threads moves the `T`s; no
// thread-affine state beyond the data itself.
unsafe impl<T: Send> Send for DoubleBuf<T> {}

/// Build a double buffer from an initial front and back value.
/// Returns the shared read side and the unique (non-`Clone`) writer.
pub fn double_buf<T>(front: T, back: T) -> (Arc<DoubleBuf<T>>, BufWriter<T>) {
    let buf = Arc::new(DoubleBuf {
        slots: [UnsafeCell::new(front), UnsafeCell::new(back)],
        pins: [AtomicUsize::new(0), AtomicUsize::new(0)],
        front: AtomicUsize::new(0),
    });
    let writer = BufWriter {
        buf: Arc::clone(&buf),
        back: 1,
    };
    (buf, writer)
}

impl<T> DoubleBuf<T> {
    /// Pin the current front slot and return a guard that keeps the
    /// writer out of it. Wait-free for readers: the retry loop only
    /// iterates when a publish lands between the load and the recheck,
    /// which bounds it by the writer's publish rate, not by other
    /// readers.
    pub fn pin(self: &Arc<Self>) -> PinGuard<T> {
        loop {
            // ordering: SeqCst — the front load, the pin increment and
            // the recheck below must form a single total order with
            // the writer's publish store and pin wait; see module docs.
            let f = self.front.load(Ordering::SeqCst);
            // ordering: SeqCst — this increment must be globally
            // visible before the recheck load so the writer's
            // `pins[f] == 0` wait cannot miss it.
            // INVARIANT: `f` was loaded from `front`, which only ever
            // stores 0 or 1 — in range for the 2-slot arrays.
            self.pins[f].fetch_add(1, Ordering::SeqCst);
            // ordering: SeqCst — recheck; see module docs.
            if self.front.load(Ordering::SeqCst) == f {
                return PinGuard {
                    buf: Arc::clone(self),
                    slot: f,
                };
            }
            // A publish raced us: the pinned slot is now the back slot
            // and the writer may be waiting on it. Undo and retry.
            // ordering: SeqCst — the undo must be visible to the
            // writer's pin wait promptly (progress, not safety).
            // INVARIANT: `f` is 0 or 1, as above.
            self.pins[f].fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Current pin count on `slot` (diagnostics and tests — stale the
    /// moment it returns).
    pub fn pin_count(&self, slot: usize) -> usize {
        // ordering: SeqCst — uniform with the protocol's counter
        // accesses; diagnostic only.
        // INVARIANT: callers pass a slot from `front_idx`/`back_idx`,
        // which only return 0 or 1.
        self.pins[slot].load(Ordering::SeqCst)
    }

    /// Index of the currently served slot (diagnostics only — stale
    /// the moment it returns).
    pub fn front_idx(&self) -> usize {
        // ordering: SeqCst — keep every access to `front` in the one
        // total order; this is a diagnostic read, strength is for
        // uniformity with the protocol loads.
        self.front.load(Ordering::SeqCst)
    }
}

/// A pinned read guard: while it lives, the writer will not mutate the
/// slot it points at.
pub struct PinGuard<T> {
    buf: Arc<DoubleBuf<T>>,
    slot: usize,
}

impl<T> PinGuard<T> {
    /// Which slot this guard pinned (used by tests and diagnostics).
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Read the pinned value. This is the model-checkable access path;
    /// in std builds [`Deref`](std::ops::Deref) is also available.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        // INVARIANT: `self.slot` came from `front` in `pin`, so it is
        // 0 or 1 — in range for the 2-slot array.
        self.buf.slots[self.slot].with(|p| {
            // SAFETY: this guard holds a pin on `slot`, so the writer
            // is excluded from mutating it (it waits for the pin count
            // to reach zero before any `with_back`); concurrent
            // readers only take shared references. `p` is valid for
            // the closure's duration.
            f(unsafe { &*p })
        })
    }
}

#[cfg(not(bds_model))]
impl<T> std::ops::Deref for PinGuard<T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: as in `with` — the pin excludes the writer for the
        // guard's lifetime, so a shared borrow tied to `&self` cannot
        // observe a mutation.
        // INVARIANT: `self.slot` is 0 or 1, as in `with`.
        unsafe { &*self.buf.slots[self.slot].get() }
    }
}

impl<T> Drop for PinGuard<T> {
    fn drop(&mut self) {
        // ordering: SeqCst — the unpin must be ordered after every
        // read through this guard and visible to the writer's pin
        // wait; a weaker unpin could let the writer's `with_back`
        // mutation overlap our final read.
        // INVARIANT: `self.slot` is 0 or 1, as in `with`.
        self.buf.pins[self.slot].fetch_sub(1, Ordering::SeqCst);
    }
}

/// The unique writer half. Not `Clone`: single-writer is what makes
/// the back slot's exclusivity argument local.
pub struct BufWriter<T> {
    buf: Arc<DoubleBuf<T>>,
    back: usize,
}

impl<T> BufWriter<T> {
    /// A fresh handle to the shared read side.
    pub fn reader(&self) -> Arc<DoubleBuf<T>> {
        Arc::clone(&self.buf)
    }

    /// Current back-slot index (the slot the next `with_back` will
    /// mutate).
    pub fn back_idx(&self) -> usize {
        self.back
    }

    /// True if no straggler reader still pins the back slot. Exposed
    /// separately from [`BufWriter::wait_back_unpinned`] so callers
    /// can attribute wait time (the serving loop's `pin_wait_ns`).
    pub fn back_unpinned(&self) -> bool {
        // ordering: SeqCst — must be in the total order after any
        // reader's pin increment whose recheck will succeed on this
        // slot; see module docs.
        // INVARIANT: the writer's `back` field is only ever 0 or 1.
        self.buf.pins[self.back].load(Ordering::SeqCst) == 0
    }

    /// Spin (yielding) until the back slot is unpinned. Terminates
    /// because `front` already points away from the back slot, so no
    /// *new* reader can stabilize a pin on it — only stragglers from
    /// before the last publish remain, and each unpins in finite time.
    pub fn wait_back_unpinned(&self) {
        while !self.back_unpinned() {
            thread::yield_now();
        }
    }

    /// Read the back slot without waiting for stragglers. Sound for
    /// the writer because stragglers only *read* the slot and the
    /// writer is the only mutator: shared reads may overlap.
    pub fn peek_back<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        // INVARIANT: the writer's `back` field is only ever 0 or 1.
        self.buf.slots[self.back].with(|p| {
            // SAFETY: `&self` on the unique writer means no `with_back`
            // mutation can be in progress; any pinned straggler holds
            // only shared access, so a shared read here cannot race.
            f(unsafe { &*p })
        })
    }

    /// Mutate the back slot exclusively, waiting out straggler pins
    /// first.
    pub fn with_back<R>(&mut self, f: impl FnOnce(&mut T) -> R) -> R {
        self.wait_back_unpinned();
        // INVARIANT: the writer's `back` field is only ever 0 or 1.
        self.buf.slots[self.back].with_mut(|p| {
            // SAFETY: the pin wait above observed `pins[back] == 0`
            // after `front` was already pointing at the other slot, so
            // every straggler has unpinned (SeqCst orders their final
            // reads before our write) and no new reader can stabilize
            // a pin here; `&mut self` excludes writer re-entrancy.
            f(unsafe { &mut *p })
        })
    }

    /// Publish the back slot: readers arriving after this see it as
    /// the front, and the old front becomes this writer's next back.
    pub fn publish(&mut self) {
        // ordering: SeqCst — the publish store must be ordered after
        // every `with_back` mutation (readers that load the new front
        // must see the finished value) and participate in the total
        // order the reader's pin/recheck relies on. This is the store
        // the CI seeded-mutation smoke flips to `Relaxed`; the model
        // checker then reports a data race between the writer's slot
        // mutation and a reader that pinned via the stale edge.
        self.buf.front.store(self.back, Ordering::SeqCst);
        self.back = 1 - self.back;
    }
}

/// Exhaustive interleaving proofs for the protocol, run under
/// `RUSTFLAGS="--cfg bds_model"`. Each test logs and sanity-checks the
/// explored-interleaving count so a silently-shrunk state space (e.g.
/// a scheduling point optimized away) fails loudly.
#[cfg(all(test, bds_model))]
mod model_tests {
    use super::*;

    /// Check `f` under a CHESS-style preemption bound of 3: every
    /// schedule with at most 3 involuntary context switches is
    /// explored exhaustively (voluntary switches — blocking, yielding,
    /// finishing — are unlimited). Unbounded DFS over these protocols
    /// is factorial in the ~12 scheduling points per thread; bound 3
    /// keeps each test in the tens of thousands of interleavings while
    /// still covering every bug class the checker's own self-tests
    /// plant (the classic lost-update needs 2 preemptions, a torn
    /// publish needs 1).
    fn check_bounded(name: &str, f: impl Fn() + Send + Sync + 'static) -> u64 {
        let mut b = loom::model::Builder::default();
        b.preemption_bound = Some(3);
        let n = b.check(f);
        println!("{name}: explored {n} interleavings (preemption bound 3)");
        n
    }

    /// Theorem 1 (torn/double-applied views): a pinned reader never
    /// observes a half-written or twice-applied view. The slot payload
    /// is a pair that the writer always mutates to equal halves via
    /// increments; any interleaving where a reader's pinned slot is
    /// mutated under it is a vector-clock data race (caught by the
    /// instrumented cell), and any torn pair fails the assert.
    #[test]
    fn model_pinned_reader_never_sees_torn_view() {
        let n = check_bounded("model_pinned_reader_never_sees_torn_view", || {
            let (buf, mut w) = double_buf([0u64, 0u64], [0u64, 0u64]);
            let reader = {
                let buf = Arc::clone(&buf);
                loom::thread::spawn(move || {
                    let g = buf.pin();
                    g.with(|v| {
                        assert_eq!(v[0], v[1], "torn view");
                        v[0]
                    })
                })
            };
            // Generation 1 into the back, publish, then immediately
            // start generation 2 into the retired front — the mutation
            // a stale pin would collide with.
            w.with_back(|v| {
                v[0] += 1;
                v[1] += 1;
            });
            w.publish();
            w.with_back(|v| {
                v[0] += 2;
                v[1] += 2;
            });
            let seen = reader.join().unwrap();
            assert!(
                seen == 0 || seen == 1 || seen == 2,
                "impossible generation {seen}"
            );
        });
        assert!(n >= 10, "state space collapsed to {n} interleavings");
    }

    /// Theorem 2 (writer progress): the deferred catch-up never
    /// double-applies a batch and the writer's pin wait terminates in
    /// every schedule. The writer replays `seq`-stamped batches into
    /// whichever slot is behind (exactly the serving loop's catch-up);
    /// payload must stay `10 * seq` in every pinned observation. The
    /// model's livelock guard bounds each execution, so completing the
    /// exploration *is* the termination proof for the spin waits.
    #[test]
    fn model_deferred_catch_up_terminates_without_double_apply() {
        let n = check_bounded(
            "model_deferred_catch_up_terminates_without_double_apply",
            || {
                // (seq, payload): each batch bumps seq by 1, payload by 10.
                let (buf, mut w) = double_buf((0usize, 0u64), (0usize, 0u64));
                let reader = {
                    let buf = Arc::clone(&buf);
                    loom::thread::spawn(move || {
                        let g = buf.pin();
                        g.with(|&(seq, payload)| {
                            assert_eq!(payload, 10 * seq as u64, "double- or mis-applied batch");
                            assert!(seq <= 2, "seq from the future: {seq}");
                        });
                    })
                };
                for target in 1..=2usize {
                    // Deferred catch-up: the retired front may be several
                    // batches behind; apply only what's missing.
                    let applied = w.peek_back(|&(seq, _)| seq);
                    for _ in applied..target {
                        w.with_back(|v| {
                            v.0 += 1;
                            v.1 += 10;
                        });
                    }
                    w.publish();
                }
                reader.join().unwrap();
                // After the loop: front carries seq 2, back (old front) seq 1.
                let g = buf.pin();
                g.with(|&(seq, payload)| {
                    assert_eq!((seq, payload), (2, 20));
                });
            },
        );
        assert!(n >= 10, "state space collapsed to {n} interleavings");
    }

    /// Two concurrent readers against a publishing writer: pins on the
    /// same slot must compose (the writer waits for *all* stragglers).
    #[test]
    fn model_two_readers_share_pins_safely() {
        let n = check_bounded("model_two_readers_share_pins_safely", || {
            let (buf, mut w) = double_buf(0u64, 0u64);
            let spawn_reader = |buf: &Arc<DoubleBuf<u64>>| {
                let buf = Arc::clone(buf);
                loom::thread::spawn(move || {
                    let g = buf.pin();
                    g.with(|&v| assert!(v == 0 || v == 1 || v == 3, "torn value {v}"))
                })
            };
            let r1 = spawn_reader(&buf);
            let r2 = spawn_reader(&buf);
            w.with_back(|v| *v = 1);
            w.publish();
            w.with_back(|v| *v = 3);
            r1.join().unwrap();
            r2.join().unwrap();
        });
        assert!(n >= 10, "state space collapsed to {n} interleavings");
    }
}

#[cfg(all(test, not(bds_model)))]
mod tests {
    use super::*;

    #[test]
    fn publish_flips_front_and_back() {
        let (buf, mut w) = double_buf(10u32, 20u32);
        assert_eq!(buf.front_idx(), 0);
        assert_eq!(w.back_idx(), 1);
        assert_eq!(*buf.pin(), 10);
        w.with_back(|v| *v = 21);
        w.publish();
        assert_eq!(buf.front_idx(), 1);
        assert_eq!(w.back_idx(), 0);
        assert_eq!(*buf.pin(), 21);
        assert_eq!(w.peek_back(|&v| v), 10);
    }

    #[test]
    fn guard_pins_and_unpins() {
        let (buf, w) = double_buf(0u8, 0u8);
        {
            let g1 = buf.pin();
            let g2 = buf.pin();
            assert_eq!(g1.slot(), 0);
            assert_eq!(g2.slot(), 0);
            // ordering: SeqCst — test-only observation of the counter.
            assert_eq!(buf.pins[0].load(Ordering::SeqCst), 2);
        }
        // ordering: SeqCst — test-only observation of the counter.
        assert_eq!(buf.pins[0].load(Ordering::SeqCst), 0);
        assert!(w.back_unpinned());
    }

    #[test]
    fn writer_sees_old_front_after_publish() {
        let (buf, mut w) = double_buf(vec![1, 2], vec![]);
        w.with_back(|v| v.extend([1, 2, 3]));
        w.publish();
        let g = buf.pin();
        assert_eq!(g.with(|v| v.len()), 3);
        assert_eq!(*g, vec![1, 2, 3]);
        // The retired front still holds the old value until caught up.
        assert_eq!(w.peek_back(|v| v.clone()), vec![1, 2]);
    }

    #[test]
    fn stale_guard_survives_publish() {
        let (buf, mut w) = double_buf(1u64, 0u64);
        let g = buf.pin();
        w.with_back(|v| *v = 2);
        w.publish();
        // The straggler still reads the old front consistently.
        assert_eq!(*g, 1);
        assert!(!w.back_unpinned());
        drop(g);
        assert!(w.back_unpinned());
        w.with_back(|v| *v = 3);
        assert_eq!(*buf.pin(), 2);
    }
}

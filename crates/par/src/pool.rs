//! Thread-pool helpers.
//!
//! Benchmarks need to compare the same batch under different processor
//! counts (experiment E4). Rayon's global pool cannot be resized, so we
//! build a scoped pool per invocation instead.
//!
//! The default worker count honors the `BDS_THREADS` environment
//! variable (a positive integer pins it; anything else falls back to
//! the hardware parallelism — the vendored rayon shim reads it when it
//! sizes its default pool). CI uses `BDS_THREADS=4` to drive the
//! parallel fan-out and scatter paths on single-vCPU runners, where
//! they would otherwise always take the sequential branch.

/// Number of worker threads rayon will use by default on this machine
/// (respects `BDS_THREADS`, see the module docs).
pub fn threads_available() -> usize {
    rayon::current_num_threads()
}

/// Run `f` inside a dedicated rayon pool with exactly `threads` workers.
///
/// Every `bds_par` primitive called (transitively) from `f` executes on
/// that pool, so this pins the effective processor count `p` for a
/// measurement. Panics from `f` propagate.
pub fn run_with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        // bds:allow(no-unwrap): pool construction happens once at startup; failure is unrecoverable.
        .expect("failed to build rayon pool");
    pool.install(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_pool_has_requested_width() {
        let inside = run_with_threads(1, rayon::current_num_threads);
        assert_eq!(inside, 1);
        let inside = run_with_threads(2, rayon::current_num_threads);
        assert_eq!(inside, 2);
    }

    #[test]
    fn returns_value_from_closure() {
        let v = run_with_threads(2, || (0..100).sum::<u64>());
        assert_eq!(v, 4950);
    }
}

//! The `std::sync` facade every concurrent protocol in this workspace
//! goes through: in normal builds it re-exports the `std` primitives
//! unchanged (zero cost), and under `--cfg bds_model` it swaps in the
//! vendored mini-loom instrumented types so the same protocol code can
//! be exhaustively model-checked.
//!
//! # Verification tiers
//!
//! The serving stack's concurrency evidence comes in four tiers, from
//! strongest-per-state to widest coverage; each tier has a local
//! command and a CI job:
//!
//! 1. **Custom lint** (`cargo run -p bds_lint`): the token rules of
//!    PR 9 (every `unsafe` block must carry a `// SAFETY:` argument,
//!    every atomic `Ordering` an `// ordering:` justification, no
//!    `unwrap`/`expect` on product paths, no `debug_assert!` guarding
//!    cross-lane/seq invariants) plus four semantic passes:
//!    *facade-bypass* (any `std::sync` atomic/`Mutex`/`Condvar`/
//!    `RwLock` in `bds_graph`/`bds_par` product code outside this
//!    facade silently escapes tier 2 and is a finding — process-global
//!    statics go through [`global`]), *panic-path* (unguarded
//!    indexing, integer `/`/`%`, truncating `as` casts on serving/
//!    durability paths need an `// INVARIANT:` argument), *wal-drift*
//!    (record tags, header field order, and length arithmetic must
//!    agree between the WAL's encode and decode sites), and
//!    *stale-pragma* (a `bds:allow` that suppresses nothing is itself
//!    a finding). Findings are ratcheted: `crates/lint/ratchet.json`
//!    pins the per-file residue, counts may only decrease, and the
//!    default run fails on any drift in either direction.
//! 2. **Model check** (`RUSTFLAGS="--cfg bds_model" cargo test -p
//!    bds_par -p bds_graph --lib model_`): the pin/publish,
//!    buffer-swap, and writer-crash protocols run under the vendored
//!    mini-loom ([`loom`]), which *enumerates* every interleaving up
//!    to a preemption bound and every weak-memory read, with
//!    vector-clock data-race detection. Exhaustive, but only for the
//!    protocol cores ported onto this facade.
//! 3. **Interleaving proptest** (`cargo test --test serve_interleave`):
//!    real threads, randomized schedules, the full `ServeLoop` — every
//!    concurrent answer must match a prefix state of the op sequence.
//!    Samples the schedule space the model can't hold (real engines,
//!    real queues).
//! 4. **Crash torture** (`cargo test --test recovery`): kill points,
//!    torn WAL tails, bit flips — the durability layer's contract
//!    under real I/O.
//!
//! [`dbuf`] is the protocol core shared by tiers 2 and 3: the serving
//! front-end's double-buffered view pair lives here so the *same*
//! pin/recheck/publish code the product runs is what the model checker
//! proves torn-read-free.
//!
//! Tier teeth are themselves verified: CI's mutation corpus
//! (`scripts/mutation_corpus.sh`) applies a set of seeded protocol
//! weakenings — ordering downgrades in [`dbuf`], a dropped WAL
//! `stamp_seq`, a skipped `EveryBatch` fsync, a swapped record tag, an
//! off-by-one in the coalescer's index fixup — each in a scratch tree,
//! and requires some tier to fail on every one of them.

pub mod dbuf;

#[cfg(not(bds_model))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}
#[cfg(bds_model)]
pub mod atomic {
    pub use loom::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

#[cfg(bds_model)]
pub use loom::sync::{Arc, Mutex};
#[cfg(not(bds_model))]
pub use std::sync::{Arc, Mutex};

/// Process-global atomics — the facade's one deliberate escape from
/// model instrumentation, for `static` counters that exist outside any
/// single model execution (a loom location is registered against the
/// *current* exploration and its constructor is not `const`, so an
/// instrumented atomic cannot live in a `static`). Always `std`, in
/// every build. Use this only for identity/statistics counters whose
/// correctness argument is a single atomic RMW (e.g. the engine-id
/// allocator); anything with a multi-access protocol belongs on
/// [`atomic`] so tier 2 can see it. The facade-bypass lint treats
/// `sync::global` as part of the facade.
pub mod global {
    pub use std::sync::atomic::{AtomicU64, Ordering};
}

/// Thread helpers with a model-aware `yield_now` (under the model,
/// yielding deprioritizes the caller so spin-wait loops stay finite
/// during exploration).
pub mod thread {
    #[cfg(not(bds_model))]
    pub use std::thread::yield_now;

    #[cfg(bds_model)]
    pub use loom::thread::yield_now;
}

/// `UnsafeCell` with loom's closure-based access API. In normal builds
/// this is a transparent wrapper over [`std::cell::UnsafeCell`]; under
/// `--cfg bds_model` it is the instrumented cell whose every access is
/// dynamically race-checked against the happens-before order.
pub mod cell {
    #[cfg(bds_model)]
    pub use loom::cell::UnsafeCell;

    /// Transparent `std` flavor of the model cell API.
    #[cfg(not(bds_model))]
    #[derive(Debug, Default)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    #[cfg(not(bds_model))]
    impl<T> UnsafeCell<T> {
        pub fn new(data: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(data))
        }

        /// Immutable access through a raw pointer.
        ///
        /// The `*const T` handed to `f` is valid for reads for the
        /// duration of the call; the *caller* is responsible for the
        /// aliasing argument (no concurrent `with_mut`), exactly as
        /// with `std::cell::UnsafeCell`.
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Mutable access through a raw pointer; same contract as
        /// [`UnsafeCell::with`], for writes.
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }

        /// Raw pointer escape hatch (std builds only) — used by lock
        /// guards that must hand out plain `&T` borrows.
        pub fn get(&self) -> *mut T {
            self.0.get()
        }
    }
}

//! Spectral/cut sparsifiers (§6.4 of the paper).
//!
//! * [`decremental`] — **Lemma 6.6**: the Light-Spectral-Sparsify chain
//!   (Algorithms 9/10 of \[ADK+16\], made batch-dynamic): level i keeps a
//!   t-bundle B_i of G_i and samples each residual edge into G_{i+1} with
//!   probability ¼ at weight 4; the sparsifier is ∪ 4^i·B_i ∪ 4^k·G_k.
//! * [`fully_dynamic`] — **Theorem 1.6**: the Bentley–Saxe partition with
//!   invariant B2 (2^{l₀} ≥ n), using the decomposability of spectral
//!   sparsifiers (Lemma 6.7: a union of (1±ε)-sparsifiers of an edge
//!   partition is a (1±ε)-sparsifier of the union).

#![deny(unsafe_op_in_unsafe_fn)]

pub mod decremental;
pub mod fully_dynamic;
pub mod weighted_set;

pub use decremental::{DecrementalSparsifier, DecrementalSparsifierBuilder, WeightedDelta};
pub use fully_dynamic::{FullyDynamicSparsifier, FullyDynamicSparsifierBuilder};
pub use weighted_set::{WeightedDeltaSet, WeightedSet};

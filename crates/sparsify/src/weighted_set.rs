//! Weighted sparsifier membership with per-batch delta netting — the
//! weighted analogue of `bds_core::SpannerSet`. Each edge has at most one
//! owner (one bundle level, one terminal set, or one Bentley–Saxe slot),
//! so membership is a map rather than a refcount. Weights are positive
//! `f64`s stored bit-packed in a flat [`EdgeTable`] (0.0 encodes
//! "absent" in the baseline, exactly as the hash-map version used it).

use bds_dstruct::EdgeTable;
use bds_graph::api::DeltaBuf;
use bds_graph::types::Edge;

/// One batch's weighted membership changes.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct WeightedDeltaSet {
    pub inserted: Vec<(Edge, f64)>,
    pub deleted: Vec<(Edge, f64)>,
}

impl WeightedDeltaSet {
    pub fn recourse(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }
}

#[derive(Debug, Default)]
pub struct WeightedSet {
    /// Canonical edge -> weight bits.
    weight: EdgeTable,
    /// weight bits at batch start for touched edges (0.0 = absent).
    baseline: EdgeTable,
}

impl WeightedSet {
    pub fn new() -> Self {
        Self::default()
    }

    fn touch(&mut self, e: Edge) {
        if self.baseline.get(e.u, e.v).is_none() {
            let w = self.weight.get(e.u, e.v).unwrap_or(0.0f64.to_bits());
            self.baseline.insert(e.u, e.v, w);
        }
    }

    /// Insert `e` at `w`; panics if already present (owners are disjoint).
    pub fn insert(&mut self, e: Edge, w: f64) {
        self.touch(e);
        let old = self.weight.insert(e.u, e.v, w.to_bits());
        assert!(old.is_none(), "weighted edge {e:?} already owned");
    }

    /// Remove `e`; panics if absent.
    pub fn remove(&mut self, e: Edge) -> f64 {
        self.touch(e);
        let bits = self
            .weight
            .remove(e.u, e.v)
            .unwrap_or_else(|| panic!("remove of unowned {e:?}"));
        f64::from_bits(bits)
    }

    pub fn get(&self, e: Edge) -> Option<f64> {
        self.weight.get(e.u, e.v).map(f64::from_bits)
    }

    pub fn len(&self) -> usize {
        self.weight.len()
    }

    pub fn is_empty(&self) -> bool {
        self.weight.is_empty()
    }

    pub fn edges(&self) -> Vec<(Edge, f64)> {
        self.weight
            .iter()
            .map(|(u, v, bits)| (Edge { u, v }, f64::from_bits(bits)))
            .collect()
    }

    /// Write the current weighted membership into `out` as insertions.
    pub fn output_into(&self, out: &mut DeltaBuf) {
        out.clear();
        for (u, v, bits) in self.weight.iter() {
            out.push_ins_w(Edge { u, v }, f64::from_bits(bits));
        }
    }

    /// Net weighted changes since the last call, written into a
    /// caller-owned buffer (weight lane populated). Allocation-free once
    /// `out` and the baseline table have warmed up. A cross-level
    /// reweighting reports as deletion-at-old-weight plus
    /// insertion-at-new-weight.
    pub fn take_delta_into(&mut self, out: &mut DeltaBuf) {
        out.clear();
        let weight = &self.weight;
        self.baseline.drain_with(|u, v, was_bits| {
            let e = Edge { u, v };
            let was = f64::from_bits(was_bits);
            let now = weight.get(u, v).map_or(0.0, f64::from_bits);
            if was == now {
                return;
            }
            if was != 0.0 {
                out.push_del_w(e, was);
            }
            if now != 0.0 {
                out.push_ins_w(e, now);
            }
        });
    }

    /// Net weighted changes since the last call. Materializing
    /// convenience over [`WeightedSet::take_delta_into`].
    pub fn take_delta(&mut self) -> WeightedDeltaSet {
        let mut d = WeightedDeltaSet::default();
        let weight = &self.weight;
        self.baseline.drain_with(|u, v, was_bits| {
            let e = Edge { u, v };
            let was = f64::from_bits(was_bits);
            let now = weight.get(u, v).map_or(0.0, f64::from_bits);
            if was == now {
                return;
            }
            if was != 0.0 {
                d.deleted.push((e, was));
            }
            if now != 0.0 {
                d.inserted.push((e, now));
            }
        });
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_delta() {
        let mut s = WeightedSet::new();
        let e = Edge::new(0, 1);
        s.insert(e, 4.0);
        let d = s.take_delta();
        assert_eq!(d.inserted, vec![(e, 4.0)]);
        s.remove(e);
        s.insert(e, 16.0); // reweighting across levels
        let d = s.take_delta();
        assert_eq!(d.deleted, vec![(e, 4.0)]);
        assert_eq!(d.inserted, vec![(e, 16.0)]);
    }

    #[test]
    fn bounce_nets_out() {
        let mut s = WeightedSet::new();
        let e = Edge::new(2, 3);
        s.insert(e, 1.0);
        s.remove(e);
        assert_eq!(s.take_delta().recourse(), 0);
    }
}

//! **Lemma 6.6** — decremental (1±ε) spectral sparsifier.
//!
//! The Light-Spectral-Sparsify chain (Algorithms 9/10): level i maintains
//! a decremental t-bundle B_i over G_i (Theorem 1.5); each residual edge
//! of G_i \ B_i is kept in G_{i+1} with probability ¼ (a deterministic
//! per-(level, edge) coin, so replay is exact) at 4× the weight. The
//! chain stops when a level holds ≤ `threshold` edges; that terminal
//! residual is kept wholesale. The sparsifier is the disjoint union
//! ∪ 4^i·B_i ∪ 4^k·G_k.
//!
//! Deletions cascade: a batch on G_i removes graph-deleted edges and
//! bundle promotions from G_{i+1} (monotonicity guarantees the residual
//! never *gains* edges, which is why the chain stays decremental). When a
//! level's edge count sinks below the threshold the chain is truncated
//! there, exactly as the paper prescribes ("we destroy the data structure
//! and reduce k accordingly").

use crate::weighted_set::{WeightedDeltaSet, WeightedSet};
use bds_bundle::BundleSpanner;
use bds_dstruct::fx::mix64;
use bds_dstruct::{EdgeTable, FxHashSet};
use bds_graph::api::{
    default_copies, validate_beta, validate_copies, validate_edges, AuxTag, BatchDynamic,
    BatchStats, ConfigError, Decremental, DeltaBuf,
};
use bds_graph::types::Edge;

/// Weighted (δH_ins, δH_del) pair of Theorem 1.6's interface.
pub type WeightedDelta = WeightedDeltaSet;

/// Decremental (1±ε) spectral sparsifier (Lemma 6.6).
pub struct DecrementalSparsifier {
    n: usize,
    t: u32,
    threshold: usize,
    seed: u64,
    /// B_0 … B_{k−1}.
    levels: Vec<BundleSpanner>,
    /// G_k: terminal residual kept wholesale (packed-key edge set).
    terminal: EdgeTable,
    sparsifier: WeightedSet,
    recourse: u64,
    /// Reusable buffer for per-level bundle deltas.
    level_scratch: DeltaBuf,
}

/// Typed builder for [`DecrementalSparsifier`] (Lemma 6.6).
#[derive(Debug, Clone)]
pub struct DecrementalSparsifierBuilder {
    n: usize,
    t: u32,
    copies: Option<usize>,
    beta: f64,
    threshold: Option<usize>,
    seed: u64,
}

impl DecrementalSparsifierBuilder {
    /// Bundle depth t per level (quality knob: larger t → smaller ε;
    /// default 2).
    pub fn depth(mut self, t: u32) -> Self {
        self.t = t;
        self
    }

    /// Clustering copies per bundle level (default ≈ 2·log₂ n + 2).
    pub fn copies(mut self, copies: usize) -> Self {
        self.copies = Some(copies);
        self
    }

    /// Exponential shift rate β (default 0.25).
    pub fn beta(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Terminal size cut-off (default 4·log₂ n).
    pub fn threshold(mut self, threshold: usize) -> Self {
        self.threshold = Some(threshold);
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn build(self, edges: &[Edge]) -> Result<DecrementalSparsifier, ConfigError> {
        if self.n < 1 {
            return Err(ConfigError::TooFewVertices { n: self.n, min: 1 });
        }
        if self.t < 1 {
            return Err(ConfigError::InvalidParam {
                name: "depth",
                reason: "the bundle depth t must be ≥ 1",
            });
        }
        validate_beta(self.beta)?;
        validate_edges(self.n, edges)?;
        let logn = (usize::BITS - self.n.max(2).leading_zeros()) as usize;
        let copies = self.copies.unwrap_or_else(|| default_copies(self.n));
        validate_copies(copies)?;
        let threshold = self.threshold.unwrap_or(4 * logn);
        Ok(DecrementalSparsifier::with_params(
            self.n, edges, self.t, copies, self.beta, threshold, self.seed,
        ))
    }
}

impl DecrementalSparsifier {
    /// Typed builder: `DecrementalSparsifier::builder(n).depth(t)
    /// .seed(s).build(&edges)`.
    pub fn builder(n: usize) -> DecrementalSparsifierBuilder {
        DecrementalSparsifierBuilder {
            n,
            t: 2,
            copies: None,
            beta: 0.25,
            threshold: None,
            seed: 0x5eed,
        }
    }
    /// `t` = bundle depth per level (quality knob: larger t → smaller ε),
    /// `copies`/`beta` = monotone-spanner parameters per bundle level,
    /// `threshold` = terminal size cut-off (paper: O(log n)).
    pub fn with_params(
        n: usize,
        edges: &[Edge],
        t: u32,
        copies: usize,
        beta: f64,
        threshold: usize,
        seed: u64,
    ) -> Self {
        let mut this = Self {
            n,
            t,
            threshold: threshold.max(1),
            seed,
            levels: Vec::new(),
            terminal: EdgeTable::new(),
            sparsifier: WeightedSet::new(),
            recourse: 0,
            level_scratch: DeltaBuf::new(),
        };
        let mut gi: Vec<Edge> = edges.to_vec();
        let mut i = 0u32;
        // ⌈log₄ m⌉ levels suffice; the threshold usually stops earlier.
        while gi.len() > this.threshold && i < 40 {
            let b = BundleSpanner::with_params(
                n,
                &gi,
                t,
                copies,
                beta,
                seed ^ (0xb0b0 + i as u64 * 65_537),
            );
            let w = 4f64.powi(i as i32);
            for e in b.bundle_edges() {
                this.sparsifier.insert(e, w);
            }
            gi = b
                .residual_edges()
                .into_iter()
                .filter(|e| this.coin(i + 1, *e))
                .collect();
            this.levels.push(b);
            i += 1;
        }
        let w = 4f64.powi(i as i32);
        for &e in &gi {
            this.sparsifier.insert(e, w);
        }
        this.terminal = gi.into_iter().map(|e| (e.u, e.v, 0)).collect();
        let _ = this.sparsifier.take_delta();
        this
    }

    /// Paper-flavoured defaults: copies ≈ 2 log₂ n, β = 0.25,
    /// threshold = 4·log₂ n.
    pub fn new(n: usize, edges: &[Edge], t: u32, seed: u64) -> Self {
        let logn = (usize::BITS - n.max(2).leading_zeros()) as usize;
        Self::with_params(n, edges, t, default_copies(n), 0.25, 4 * logn, seed)
    }

    /// Deterministic ¼ coin for membership of `e` in G_{level}.
    fn coin(&self, level: u32, e: Edge) -> bool {
        mix64(self.seed ^ (level as u64) << 48 ^ e.key()) & 3 == 0
    }

    pub fn n(&self) -> usize {
        self.n
    }

    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    pub fn t(&self) -> u32 {
        self.t
    }

    /// Number of live edges of the input graph G₀.
    pub fn num_live_edges(&self) -> usize {
        if let Some(b) = self.levels.first() {
            b.num_live_edges()
        } else {
            self.terminal.len()
        }
    }

    pub fn contains_edge(&self, e: Edge) -> bool {
        if let Some(b) = self.levels.first() {
            b.contains_edge(e)
        } else {
            self.terminal.contains(e.u, e.v)
        }
    }

    /// All live edges of G₀ (used by the fully-dynamic wrapper rebuilds).
    pub fn live_edges(&self) -> Vec<Edge> {
        if let Some(b) = self.levels.first() {
            let mut out = b.bundle_edges();
            out.extend(b.residual_edges());
            out
        } else {
            self.terminal
                .iter()
                .map(|(u, v, _)| Edge { u, v })
                .collect()
        }
    }

    /// The weighted sparsifier edges.
    pub fn sparsifier_edges(&self) -> Vec<(Edge, f64)> {
        self.sparsifier.edges()
    }

    pub fn sparsifier_size(&self) -> usize {
        self.sparsifier.len()
    }

    /// Delete a batch of live G₀ edges; returns the weighted delta.
    pub fn delete_batch(&mut self, batch: &[Edge]) -> WeightedDelta {
        self.delete_inner(batch);
        let delta = self.sparsifier.take_delta();
        self.recourse += delta.recourse() as u64;
        delta
    }

    /// [`DecrementalSparsifier::delete_batch`] reporting into a
    /// caller-owned buffer (weight lane populated).
    pub fn delete_batch_into(&mut self, batch: &[Edge], out: &mut DeltaBuf) {
        self.delete_inner(batch);
        self.sparsifier.take_delta_into(out);
        self.recourse += out.recourse() as u64;
    }

    fn delete_inner(&mut self, batch: &[Edge]) {
        let mut xi: Vec<Edge> = batch.to_vec();
        // A promotion at level i may still be owned by a *deeper* level
        // (terminal or a deeper bundle) until the cascade reaches it, so
        // promotion inserts are deferred past the cascade.
        let mut promoted: Vec<(Edge, f64)> = Vec::new();
        let mut scratch = std::mem::take(&mut self.level_scratch);
        for i in 0..self.levels.len() {
            if xi.is_empty() {
                break;
            }
            let w = 4f64.powi(i as i32);
            self.levels[i].delete_batch_into(&xi, &mut scratch);
            for &e in scratch.deleted() {
                self.sparsifier.remove(e);
            }
            for &e in scratch.inserted() {
                promoted.push((e, w));
            }
            // Cascade: residual leavers that were sampled into G_{i+1}.
            xi.clear();
            for e in scratch.aux_edges(AuxTag::ResidualDeleted) {
                if self.coin(i as u32 + 1, e) {
                    xi.push(e);
                }
            }
        }
        self.level_scratch = scratch;
        // Terminal level.
        let wk = 4f64.powi(self.levels.len() as i32);
        for e in xi {
            assert!(
                self.terminal.remove(e.u, e.v).is_some(),
                "cascaded edge {e:?} missing from terminal"
            );
            let w = self.sparsifier.remove(e);
            debug_assert_eq!(w, wk);
        }
        for (e, w) in promoted {
            self.sparsifier.insert(e, w);
        }
        self.truncate_if_small();
    }

    /// Truncate the chain at the first level that sank to ≤ threshold
    /// edges (the paper's "reduce k accordingly").
    fn truncate_if_small(&mut self) {
        let Some(cut) =
            (0..self.levels.len()).find(|&i| self.levels[i].num_live_edges() <= self.threshold)
        else {
            return;
        };
        // Everything at levels ≥ cut leaves the sparsifier; level cut's
        // live edges become the new terminal at weight 4^cut.
        let new_terminal: Vec<Edge> = {
            let b = &self.levels[cut];
            let mut v = b.bundle_edges();
            v.extend(b.residual_edges());
            v
        };
        for i in cut..self.levels.len() {
            for e in self.levels[i].bundle_edges() {
                self.sparsifier.remove(e);
            }
        }
        for (u, v, _) in self.terminal.drain() {
            self.sparsifier.remove(Edge { u, v });
        }
        self.levels.truncate(cut);
        let w = 4f64.powi(cut as i32);
        for &e in &new_terminal {
            self.sparsifier.insert(e, w);
        }
        self.terminal = new_terminal.into_iter().map(|e| (e.u, e.v, 0)).collect();
    }

    /// Test oracle: level consistency, coin-replay of the sampling chain,
    /// and sparsifier composition.
    pub fn validate(&self) {
        for (i, b) in self.levels.iter().enumerate() {
            b.validate();
            // G_{i+1} = sampled residual of G_i.
            let next_edges: FxHashSet<Edge> = if i + 1 < self.levels.len() {
                let nb = &self.levels[i + 1];
                let mut v: FxHashSet<Edge> = nb.bundle_edges().into_iter().collect();
                v.extend(nb.residual_edges());
                v
            } else {
                self.terminal
                    .iter()
                    .map(|(u, v, _)| Edge { u, v })
                    .collect()
            };
            for e in b.residual_edges() {
                let want = self.coin(i as u32 + 1, e);
                // Presence may be *false* even for sampled edges only if
                // the edge was never sampled at init — impossible here
                // since membership is maintained exactly; so equality.
                assert_eq!(
                    next_edges.contains(&e),
                    want,
                    "sampling mismatch at level {i} for {e:?}"
                );
            }
            for &e in &next_edges {
                assert!(
                    b.contains_edge(e) && !b.in_bundle(e),
                    "level {} edge {e:?} not residual at level {i}",
                    i + 1
                );
            }
        }
        // Sparsifier = disjoint union of weighted levels.
        let mut want = WeightedSet::new();
        for (i, b) in self.levels.iter().enumerate() {
            let w = 4f64.powi(i as i32);
            for e in b.bundle_edges() {
                want.insert(e, w);
            }
        }
        let wk = 4f64.powi(self.levels.len() as i32);
        for (u, v, _) in self.terminal.iter() {
            want.insert(Edge { u, v }, wk);
        }
        let mut got = self.sparsifier.edges();
        let mut exp = want.edges();
        got.sort_by_key(|x| x.0);
        exp.sort_by_key(|x| x.0);
        assert_eq!(got, exp, "sparsifier composition diverged");
    }
}

impl BatchDynamic for DecrementalSparsifier {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn num_live_edges(&self) -> usize {
        DecrementalSparsifier::num_live_edges(self)
    }

    /// The maintained output set: the weighted sparsifier ∪ 4^i·B_i ∪
    /// 4^k·G_k (weight lane populated).
    fn output_into(&self, out: &mut DeltaBuf) {
        self.sparsifier.output_into(out);
    }

    fn stats(&self) -> BatchStats {
        let mut s = BatchStats::default();
        for b in &self.levels {
            let bs = BatchDynamic::stats(b);
            s.scan_steps += bs.scan_steps;
            s.vertices_touched += bs.vertices_touched;
        }
        s.recourse = self.recourse;
        s
    }
}

impl Decremental for DecrementalSparsifier {
    fn delete_into(&mut self, deletions: &[Edge], out: &mut DeltaBuf) {
        self.delete_batch_into(deletions, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_graph::cuts::sparsifier_error;
    use bds_graph::gen;
    use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};

    #[test]
    fn init_validates_and_weights_compose() {
        let n = 80;
        let edges = gen::gnm_connected(n, 500, 3);
        let s = DecrementalSparsifier::with_params(n, &edges, 2, 5, 0.3, 20, 7);
        s.validate();
        assert!(s.num_levels() >= 1);
        assert!(s.sparsifier_size() <= edges.len());
    }

    #[test]
    fn quality_improves_with_t() {
        // The (1±ε) trend: deeper bundles → smaller error. We check the
        // coarse monotonicity on one graph (averaging over seeds would be
        // tighter; the tables binary does that).
        let n = 120;
        let edges = gen::gnm_connected(n, 1500, 11);
        let err_t = |t: u32| {
            let s = DecrementalSparsifier::with_params(n, &edges, t, 6, 0.3, 16, 13);
            sparsifier_error(n, &edges, &s.sparsifier_edges(), 40, 17)
        };
        let e1 = err_t(1);
        let e4 = err_t(4);
        assert!(
            e4 <= e1 * 1.25 + 0.05,
            "error should not grow with t: t=1 → {e1}, t=4 → {e4}"
        );
    }

    #[test]
    fn deletions_cascade_and_validate() {
        let n = 60;
        let edges = gen::gnm_connected(n, 400, 19);
        let mut s = DecrementalSparsifier::with_params(n, &edges, 2, 5, 0.3, 12, 23);
        let mut live = edges.clone();
        let mut rng = StdRng::seed_from_u64(29);
        live.shuffle(&mut rng);
        let mut shadow: Vec<(Edge, f64)> = s.sparsifier_edges();
        while live.len() > 40 {
            let k = rng.gen_range(1..=20.min(live.len()));
            let batch: Vec<Edge> = live.split_off(live.len() - k);
            let d = s.delete_batch(&batch);
            for (e, w) in &d.deleted {
                let pos = shadow
                    .iter()
                    .position(|(se, sw)| se == e && sw == w)
                    .unwrap_or_else(|| panic!("deleted ({e:?},{w}) not in shadow"));
                shadow.swap_remove(pos);
            }
            for (e, w) in &d.inserted {
                shadow.push((*e, *w));
            }
            s.validate();
            let mut got = s.sparsifier_edges();
            got.sort_by_key(|x| x.0);
            shadow.sort_by_key(|x| x.0);
            assert_eq!(got, shadow, "weighted delta replay diverged");
        }
        assert_eq!(s.num_live_edges(), live.len());
    }

    #[test]
    fn delete_to_empty_truncates_chain() {
        let n = 40;
        let edges = gen::gnm_connected(n, 250, 31);
        let mut s = DecrementalSparsifier::with_params(n, &edges, 2, 4, 0.3, 10, 37);
        let mut live = edges;
        let mut rng = StdRng::seed_from_u64(41);
        live.shuffle(&mut rng);
        while !live.is_empty() {
            let k = rng.gen_range(1..=15.min(live.len()));
            let batch: Vec<Edge> = live.split_off(live.len() - k);
            s.delete_batch(&batch);
            s.validate();
        }
        assert_eq!(s.sparsifier_size(), 0);
        assert_eq!(s.num_levels(), 0);
    }

    #[test]
    fn weights_are_powers_of_four() {
        let n = 60;
        let edges = gen::gnm_connected(n, 600, 43);
        let s = DecrementalSparsifier::with_params(n, &edges, 1, 4, 0.3, 8, 47);
        for (_, w) in s.sparsifier_edges() {
            let l = w.log2() / 2.0;
            assert!((l - l.round()).abs() < 1e-9, "weight {w} not a power of 4");
        }
    }
}

//! **Theorem 1.6** — fully-dynamic (1±ε) spectral sparsifier.
//!
//! Identical reduction to Theorem 1.1 but with invariant **B2**
//! (2^{l₀} ≥ n) and the decremental sparsifier of Lemma 6.6 per slot.
//! Correctness rests on decomposability (Lemma 6.7): the union of
//! (1±ε)-sparsifiers of an edge partition is a (1±ε)-sparsifier of the
//! whole graph. E₀ edges carry weight 1 (a subgraph is an exact
//! sparsifier of itself).

use crate::decremental::DecrementalSparsifier;
use crate::weighted_set::{WeightedDeltaSet, WeightedSet};
use bds_dstruct::{EdgeTable, FxHashMap};
use bds_graph::api::{
    validate_edges, BatchDynamic, BatchStats, ConfigError, Decremental, DeltaBuf, FullyDynamic,
};
use bds_graph::types::{Edge, UpdateBatch};

enum Slot {
    Empty,
    Instance(Box<DecrementalSparsifier>),
}

/// Fully-dynamic spectral sparsifier (Theorem 1.6).
pub struct FullyDynamicSparsifier {
    n: usize,
    t: u32,
    l0: u32,
    e0: Vec<Edge>,
    slots: Vec<Slot>,
    /// Canonical edge -> owning slot number.
    index: EdgeTable,
    sparsifier: WeightedSet,
    seed: u64,
    rebuilds: u64,
    recourse: u64,
    /// Reusable buffer for slot-level deltas.
    scratch: DeltaBuf,
}

/// Typed builder for [`FullyDynamicSparsifier`] (Theorem 1.6).
#[derive(Debug, Clone)]
pub struct FullyDynamicSparsifierBuilder {
    n: usize,
    t: u32,
    seed: u64,
}

impl FullyDynamicSparsifierBuilder {
    /// Bundle depth t per slot (quality knob; default 2).
    pub fn depth(mut self, t: u32) -> Self {
        self.t = t;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn build(self, edges: &[Edge]) -> Result<FullyDynamicSparsifier, ConfigError> {
        if self.n < 2 {
            return Err(ConfigError::TooFewVertices { n: self.n, min: 2 });
        }
        if self.t < 1 {
            return Err(ConfigError::InvalidParam {
                name: "depth",
                reason: "the bundle depth t must be ≥ 1",
            });
        }
        validate_edges(self.n, edges)?;
        Ok(FullyDynamicSparsifier::new(
            self.n, self.t, edges, self.seed,
        ))
    }
}

impl FullyDynamicSparsifier {
    /// Typed builder: `FullyDynamicSparsifier::builder(n).depth(t)
    /// .seed(s).build(&edges)`.
    pub fn builder(n: usize) -> FullyDynamicSparsifierBuilder {
        FullyDynamicSparsifierBuilder {
            n,
            t: 2,
            seed: 0x5eed,
        }
    }

    /// `t` = bundle depth (quality knob; the paper's t = Θ(ε⁻² log³ n)).
    pub fn new(n: usize, t: u32, edges: &[Edge], seed: u64) -> Self {
        assert!(n >= 2);
        let l0 = (n as f64).log2().ceil() as u32; // invariant B2
        let mut s = Self {
            n,
            t,
            l0,
            e0: Vec::new(),
            slots: Vec::new(),
            index: EdgeTable::new(),
            sparsifier: WeightedSet::new(),
            seed,
            rebuilds: 0,
            recourse: 0,
            scratch: DeltaBuf::new(),
        };
        if !edges.is_empty() {
            let mut j = 1u32;
            while (edges.len() as u64) > s.capacity(j) {
                j += 1;
            }
            s.build_slot(j, edges.to_vec());
        }
        let _ = s.sparsifier.take_delta();
        s
    }

    fn capacity(&self, slot: u32) -> u64 {
        1u64 << (self.l0.min(40) + slot)
    }

    fn next_seed(&mut self) -> u64 {
        self.seed = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(7);
        self.seed
    }

    fn slot_len(&self, i: u32) -> usize {
        match self.slots.get(i as usize - 1) {
            Some(Slot::Instance(d)) => d.num_live_edges(),
            _ => 0,
        }
    }

    fn slot_is_empty(&self, i: u32) -> bool {
        self.slot_len(i) == 0
    }

    fn build_slot(&mut self, j: u32, edges: Vec<Edge>) {
        while self.slots.len() < j as usize {
            self.slots.push(Slot::Empty);
        }
        debug_assert!(self.slot_is_empty(j));
        assert!(
            edges.len() as u64 <= self.capacity(j),
            "invariant B2 violated"
        );
        self.rebuilds += 1;
        let seed = self.next_seed();
        let inst = DecrementalSparsifier::new(self.n, &edges, self.t, seed);
        for (e, w) in inst.sparsifier_edges() {
            self.sparsifier.insert(e, w);
        }
        for e in edges {
            self.index.insert(e.u, e.v, j as u64);
        }
        self.slots[j as usize - 1] = Slot::Instance(Box::new(inst));
    }

    fn drain_slot(&mut self, j: u32) -> Vec<Edge> {
        if j as usize > self.slots.len() {
            return Vec::new();
        }
        match std::mem::replace(&mut self.slots[j as usize - 1], Slot::Empty) {
            Slot::Empty => Vec::new(),
            Slot::Instance(d) => {
                for (e, _) in d.sparsifier_edges() {
                    self.sparsifier.remove(e);
                }
                d.live_edges()
            }
        }
    }

    /// Insert a batch of absent edges.
    pub fn insert_batch(&mut self, inserted: &[Edge]) -> WeightedDeltaSet {
        self.insert_inner(inserted);
        let delta = self.sparsifier.take_delta();
        self.recourse += delta.recourse() as u64;
        delta
    }

    /// [`FullyDynamicSparsifier::insert_batch`] reporting into a
    /// caller-owned buffer (weight lane populated).
    pub fn insert_batch_into(&mut self, inserted: &[Edge], out: &mut DeltaBuf) {
        self.insert_inner(inserted);
        self.sparsifier.take_delta_into(out);
        self.recourse += out.recourse() as u64;
    }

    fn insert_inner(&mut self, inserted: &[Edge]) {
        if inserted.is_empty() {
            return;
        }
        let mut u: Vec<Edge> = inserted.to_vec();
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), inserted.len(), "duplicate edges in insert batch");
        for e in &u {
            assert!(
                !self.index.contains(e.u, e.v),
                "insert of present edge {e:?}"
            );
        }
        let cap0 = self.capacity(0);
        let q = u.len() as u64 / cap0;
        let r = (u.len() as u64 % cap0) as usize;
        let mut cursor = u.len();
        for i in (0..62).rev() {
            if q & (1 << i) != 0 {
                let size = (cap0 << i) as usize;
                let piece = u[cursor - size..cursor].to_vec();
                cursor -= size;
                let lo = (i as u32).max(1);
                let mut j = lo;
                while !self.slot_is_empty(j) {
                    j += 1;
                }
                let mut merged = piece;
                for s in lo..j {
                    merged.extend(self.drain_slot(s));
                }
                self.build_slot(j, merged);
            }
        }
        let ur = u[..r].to_vec();
        if !ur.is_empty() {
            if (self.e0.len() + ur.len()) as u64 <= cap0 {
                for e in ur {
                    self.index.insert(e.u, e.v, 0);
                    self.sparsifier.insert(e, 1.0);
                    self.e0.push(e);
                }
            } else {
                let mut j = 1u32;
                while !self.slot_is_empty(j) {
                    j += 1;
                }
                let mut merged = ur;
                for e in self.e0.drain(..) {
                    self.sparsifier.remove(e);
                    merged.push(e);
                }
                for s in 1..j {
                    merged.extend(self.drain_slot(s));
                }
                self.build_slot(j, merged);
            }
        }
    }

    /// Delete a batch of present edges.
    pub fn delete_batch(&mut self, deleted: &[Edge]) -> WeightedDeltaSet {
        self.delete_inner(deleted);
        let delta = self.sparsifier.take_delta();
        self.recourse += delta.recourse() as u64;
        delta
    }

    /// [`FullyDynamicSparsifier::delete_batch`] reporting into a
    /// caller-owned buffer (weight lane populated).
    pub fn delete_batch_into(&mut self, deleted: &[Edge], out: &mut DeltaBuf) {
        self.delete_inner(deleted);
        self.sparsifier.take_delta_into(out);
        self.recourse += out.recourse() as u64;
    }

    /// Apply one mixed batch (deletions, then insertions) atomically,
    /// netting across phases through the [`WeightedSet`] baseline.
    pub fn process_batch(&mut self, batch: &UpdateBatch) -> WeightedDeltaSet {
        self.delete_inner(&batch.deletions);
        self.insert_inner(&batch.insertions);
        let delta = self.sparsifier.take_delta();
        self.recourse += delta.recourse() as u64;
        delta
    }

    /// [`FullyDynamicSparsifier::process_batch`] reporting into a
    /// caller-owned buffer.
    pub fn process_batch_into(&mut self, batch: &UpdateBatch, out: &mut DeltaBuf) {
        self.delete_inner(&batch.deletions);
        self.insert_inner(&batch.insertions);
        self.sparsifier.take_delta_into(out);
        self.recourse += out.recourse() as u64;
    }

    fn delete_inner(&mut self, deleted: &[Edge]) {
        let mut by_slot: FxHashMap<u32, Vec<Edge>> = FxHashMap::default();
        for e in deleted {
            let slot = self
                .index
                .remove(e.u, e.v)
                .unwrap_or_else(|| panic!("delete of absent edge {e:?}"));
            by_slot.entry(slot as u32).or_default().push(*e);
        }
        for (slot, edges) in by_slot {
            if slot == 0 {
                for e in edges {
                    // bds:allow(no-unwrap): structure invariant named in the message; corrupt state must fail fast, not propagate.
                    let pos = self.e0.iter().position(|&x| x == e).expect("E0 edge");
                    self.e0.swap_remove(pos);
                    self.sparsifier.remove(e);
                }
            } else {
                let mut scratch = std::mem::take(&mut self.scratch);
                let Slot::Instance(d) = &mut self.slots[slot as usize - 1] else {
                    panic!("indexed slot {slot} empty")
                };
                d.delete_batch_into(&edges, &mut scratch);
                for (e, _) in scratch.deleted_weighted() {
                    self.sparsifier.remove(e);
                }
                for (e, w) in scratch.inserted_weighted() {
                    self.sparsifier.insert(e, w);
                }
                self.scratch = scratch;
            }
        }
    }

    pub fn num_live_edges(&self) -> usize {
        self.index.len()
    }

    pub fn sparsifier_edges(&self) -> Vec<(Edge, f64)> {
        self.sparsifier.edges()
    }

    pub fn sparsifier_size(&self) -> usize {
        self.sparsifier.len()
    }

    pub fn num_rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Test oracle.
    pub fn validate(&self) {
        let mut total = self.e0.len();
        for (i, slot) in self.slots.iter().enumerate() {
            if let Slot::Instance(d) = slot {
                let m = d.num_live_edges();
                assert!(m as u64 <= self.capacity(i as u32 + 1), "B2 violated");
                total += m;
                d.validate();
            }
        }
        assert_eq!(total, self.index.len());
        let mut want = WeightedSet::new();
        for e in &self.e0 {
            want.insert(*e, 1.0);
        }
        for slot in &self.slots {
            if let Slot::Instance(d) = slot {
                for (e, w) in d.sparsifier_edges() {
                    want.insert(e, w);
                }
            }
        }
        let mut got = self.sparsifier.edges();
        let mut exp = want.edges();
        got.sort_by_key(|x| x.0);
        exp.sort_by_key(|x| x.0);
        assert_eq!(got, exp, "fully-dynamic sparsifier diverged");
    }
}

impl BatchDynamic for FullyDynamicSparsifier {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn num_live_edges(&self) -> usize {
        FullyDynamicSparsifier::num_live_edges(self)
    }

    /// The maintained output set: the weighted sparsifier (weight lane
    /// populated; E₀ edges carry weight 1).
    fn output_into(&self, out: &mut DeltaBuf) {
        self.sparsifier.output_into(out);
    }

    fn stats(&self) -> BatchStats {
        let mut s = BatchStats::default();
        for slot in &self.slots {
            if let Slot::Instance(d) = slot {
                let ds = BatchDynamic::stats(d.as_ref());
                s.scan_steps += ds.scan_steps;
                s.vertices_touched += ds.vertices_touched;
            }
        }
        s.recourse = self.recourse;
        s
    }
}

impl Decremental for FullyDynamicSparsifier {
    fn delete_into(&mut self, deletions: &[Edge], out: &mut DeltaBuf) {
        self.delete_batch_into(deletions, out);
    }
}

impl FullyDynamic for FullyDynamicSparsifier {
    fn insert_into(&mut self, insertions: &[Edge], out: &mut DeltaBuf) {
        self.insert_batch_into(insertions, out);
    }

    fn apply_into(&mut self, batch: &UpdateBatch, out: &mut DeltaBuf) {
        self.process_batch_into(batch, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_graph::cuts::sparsifier_error;
    use bds_graph::gen;
    use bds_graph::stream::UpdateStream;

    #[test]
    fn init_and_quality() {
        let n = 100;
        let edges = gen::gnm_connected(n, 1200, 3);
        let s = FullyDynamicSparsifier::new(n, 3, &edges, 7);
        s.validate();
        let err = sparsifier_error(n, &edges, &s.sparsifier_edges(), 30, 11);
        assert!(err < 1.0, "error {err} unreasonably high");
    }

    #[test]
    fn mixed_updates_validate() {
        let n = 50;
        let init = gen::gnm_connected(n, 300, 13);
        let mut s = FullyDynamicSparsifier::new(n, 2, &init, 17);
        let mut stream = UpdateStream::new(n, &init, 19);
        for _ in 0..12 {
            let b = stream.next_batch(10, 8);
            s.delete_batch(&b.deletions);
            s.insert_batch(&b.insertions);
            s.validate();
            assert_eq!(s.num_live_edges(), stream.live_edges().len());
        }
    }

    #[test]
    fn weighted_delta_replay() {
        let n = 40;
        let init = gen::gnm_connected(n, 200, 23);
        let mut s = FullyDynamicSparsifier::new(n, 2, &init, 29);
        let mut stream = UpdateStream::new(n, &init, 31);
        let mut shadow: Vec<(Edge, f64)> = s.sparsifier_edges();
        for _ in 0..10 {
            let b = stream.next_batch(6, 6);
            for d in [s.delete_batch(&b.deletions), s.insert_batch(&b.insertions)] {
                for (e, w) in &d.deleted {
                    let pos = shadow
                        .iter()
                        .position(|(se, sw)| se == e && sw == w)
                        .unwrap_or_else(|| panic!("missing ({e:?},{w})"));
                    shadow.swap_remove(pos);
                }
                for (e, w) in &d.inserted {
                    shadow.push((*e, *w));
                }
            }
            let mut got = s.sparsifier_edges();
            got.sort_by_key(|x| x.0);
            shadow.sort_by_key(|x| x.0);
            assert_eq!(got, shadow);
        }
    }
}

//! The auxiliary "shifted" graph G′ of §3.3.
//!
//! Exponential start times δ_u = d_u + f_u reduce exponential-start-time
//! clustering (MPVX15 / EN18) to a single-source BFS: G′ adds a chain
//! p₀ → p₁ → … → p_{t−1} (t = max_u d_u + 1), a shortcut p_{t−1−d_u} → u
//! per vertex, and both orientations of every original edge. The shortest
//! path from p₀ to v has length t − d_u + dist(u, v) minimized over u, so
//! the BFS tree realizes `Cluster(v) = argmin_u (dist(u, v) − δ_u)` with
//! the fractional parts f_u broken by the priority permutation.

use bds_graph::types::{Edge, V};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Shift assignment plus the derived auxiliary-graph layout.
#[derive(Debug, Clone)]
pub struct ShiftedGraph {
    /// Original vertex count; p-nodes are `n..n+t`.
    pub n: usize,
    /// Chain length `t = max_u d_u + 1`.
    pub t: u32,
    /// Integer parts of the shifts.
    pub d: Vec<u32>,
    /// Priority rank per vertex: rank of f_u in ascending order, so larger
    /// rank ⇔ larger fractional part ⇔ preferred cluster center.
    pub perm: Vec<u32>,
}

impl ShiftedGraph {
    /// Sample δ_u i.i.d. Exp(β). If `cap = Some(c)`, resample the whole
    /// vector until `max δ_u < c` (the Las Vegas loop of Algorithm 2);
    /// with `cap = None` shifts are used as drawn (Lemma 6.4 / \[MPX13\]).
    pub fn sample(n: usize, beta: f64, cap: Option<f64>, seed: u64) -> Self {
        assert!(beta > 0.0 && n > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let deltas: Vec<f64> = loop {
            let ds: Vec<f64> = (0..n)
                .map(|_| {
                    // Inverse-transform sampling of Exp(β).
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    -u.ln() / beta
                })
                .collect();
            match cap {
                Some(c) if ds.iter().cloned().fold(0.0, f64::max) >= c => continue,
                _ => break ds,
            }
        };
        Self::from_deltas(&deltas)
    }

    /// Build from explicit real shifts (tests use this for determinism).
    pub fn from_deltas(deltas: &[f64]) -> Self {
        let n = deltas.len();
        let d: Vec<u32> = deltas.iter().map(|&x| x as u32).collect();
        let t = d.iter().copied().max().unwrap_or(0) + 1;
        // perm[v] = rank of the fractional part f_v (ascending).
        let mut idx: Vec<u32> = (0..n as u32).collect();
        idx.sort_by(|&a, &b| {
            let fa = deltas[a as usize].fract();
            let fb = deltas[b as usize].fract();
            fa.total_cmp(&fb).then(a.cmp(&b))
        });
        let mut perm = vec![0u32; n];
        for (rank, &v) in idx.iter().enumerate() {
            perm[v as usize] = rank as u32;
        }
        Self { n, t, d, perm }
    }

    pub fn total_vertices(&self) -> usize {
        self.n + self.t as usize
    }

    #[inline]
    pub fn p_node(&self, i: u32) -> V {
        debug_assert!(i < self.t);
        self.n as V + i
    }

    #[inline]
    pub fn is_p(&self, x: V) -> bool {
        (x as usize) >= self.n
    }

    /// Source of the BFS: p₀.
    pub fn source(&self) -> V {
        self.p_node(0)
    }

    /// Priority key for an in-entry whose source is original vertex `w`
    /// given that `w` currently belongs to cluster `center`: the center's
    /// permutation rank in the high bits, `w` as a distinct tiebreak.
    #[inline]
    pub fn cluster_priority(&self, center: V, w: V) -> u64 {
        ((self.perm[center as usize] as u64) << 32) | w as u64
    }

    /// Priority key of the shortcut entry p_{t−1−d_v} → v inside `In(v)`:
    /// v's own permutation rank (v becoming its own center), with a
    /// tiebreak that cannot collide with any real in-neighbor.
    #[inline]
    pub fn self_priority(&self, v: V) -> u64 {
        ((self.perm[v as usize] as u64) << 32) | u32::MAX as u64
    }

    /// Fixed (never-deleted) scaffold edges: the chain and the shortcuts.
    pub fn scaffold_edges(&self) -> Vec<(V, V, u64)> {
        let mut out = Vec::with_capacity(self.t as usize + self.n);
        for i in 0..self.t.saturating_sub(1) {
            // In(p_{i+1}) holds only this entry; priority is arbitrary.
            out.push((self.p_node(i), self.p_node(i + 1), u64::MAX));
        }
        for v in 0..self.n as V {
            let p = self.p_node(self.t - 1 - self.d[v as usize]);
            out.push((p, v, self.self_priority(v)));
        }
        out
    }

    /// Full directed, prioritized edge set for an [`crate::EsTree`] with
    /// *static* per-source priorities (Lemma 6.4 usage: every in-entry
    /// from w is keyed by w's own rank — no cluster labels needed).
    pub fn static_edges(&self, edges: &[Edge]) -> Vec<(V, V, u64)> {
        let mut out = self.scaffold_edges();
        out.reserve(edges.len() * 2);
        for e in edges {
            out.push((e.u, e.v, self.cluster_priority(e.u, e.u)));
            out.push((e.v, e.u, self.cluster_priority(e.v, e.v)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::EsTree;
    use bds_graph::gen;

    #[test]
    fn sampling_respects_cap() {
        let k = 4.0;
        let n = 500;
        let beta = (10.0 * n as f64).ln() / k;
        let sg = ShiftedGraph::sample(n, beta, Some(k), 7);
        assert!(sg.t <= k as u32, "t = {} exceeds k", sg.t);
        assert_eq!(sg.d.len(), n);
        // perm is a permutation.
        let mut seen = vec![false; n];
        for &p in &sg.perm {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
    }

    #[test]
    fn shifted_distances_encode_clustering() {
        // dist(p0, v) = t - max_u (δ_u - dist(u, v)) over integer parts:
        // = min_u (t - d_u + dist(u,v)).
        let edges = gen::gnm_connected(60, 150, 9);
        let sg = ShiftedGraph::sample(60, (600.0f64).ln() / 3.0, Some(3.0), 11);
        let es = EsTree::new(
            sg.total_vertices(),
            sg.source(),
            sg.t,
            &sg.static_edges(&edges),
        );
        es.validate();
        // Reference: all-pairs BFS over the original graph.
        let g = bds_graph::CsrGraph::from_edges(60, &edges);
        for v in 0..60u32 {
            let dv = es.dist(v);
            let want = (0..60u32)
                .map(|u| {
                    let du = g.bfs(u, 10_000)[v as usize];
                    if du == bds_graph::csr::UNREACHED {
                        u32::MAX
                    } else {
                        sg.t - sg.d[u as usize] + du
                    }
                })
                .min()
                .unwrap();
            assert_eq!(dv, want, "vertex {v}");
        }
    }

    #[test]
    fn every_vertex_reachable_within_t() {
        let edges = gen::gnm(100, 120, 3); // possibly disconnected
        let sg = ShiftedGraph::sample(100, (1000.0f64).ln() / 2.0, Some(2.0), 13);
        let es = EsTree::new(
            sg.total_vertices(),
            sg.source(),
            sg.t,
            &sg.static_edges(&edges),
        );
        for v in 0..100u32 {
            assert!(es.dist(v) <= sg.t, "vertex {v} beyond t");
        }
    }
}

//! The batched Even–Shiloach tree (Theorem 1.2 / Algorithm 1).
//!
//! Per vertex `v`, `In(v)` is a Lemma 3.1 priority list of in-edges in
//! descending priority order; the current parent is the *first* entry at
//! depth `Dist(v) − 1` (invariant A1), identified by its priority key
//! (ranks shift under deletions, keys do not). A deletion batch runs
//! level-synchronous phases `i = 1..=L`: every dirty vertex at level `i`
//! rescans forward from its resume position with `NextWith`; a failed scan
//! bumps the vertex to level `i+1`, resets its scan to the head, and
//! enqueues it together with its tree children (invariants A2–A4).
//!
//! Forward-only scanning is sound decrementally because an in-neighbor's
//! distance never decreases: entries skipped at some level can never
//! become candidates at that level again.

use bds_dstruct::edge_table::{pack, unpack};
use bds_dstruct::{EdgeTable, PriorityList};
use bds_graph::api::{BatchDynamic, BatchStats, ConfigError, Decremental, DeltaBuf};
use bds_graph::types::{Edge, V};
use bds_par::{WorkCounter, GRAIN};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::sync::atomic::{AtomicU32, Ordering};

/// Parent sentinel.
pub const NO_VERTEX: V = V::MAX;
/// `dist` value for vertices beyond depth L (the paper's "L + 1").
pub const UNREACHED: u32 = u32::MAX;

/// One vertex's parent pointer change from a deletion batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParentChange {
    pub vertex: V,
    pub old_parent: V,
    pub new_parent: V,
}

#[derive(Clone, Copy)]
struct InEntry {
    src: V,
}

/// Range of entries whose packed key has high word `x`, in a slice
/// sorted by packed key (i.e. the adjacency group of vertex `x`).
#[inline]
fn group_bounds(sorted: &[(u64, u64)], x: V) -> (usize, usize) {
    let lo = sorted.partition_point(|&(k, _)| k < (x as u64) << 32);
    let hi = sorted.partition_point(|&(k, _)| k < (x as u64 + 1) << 32);
    (lo, hi)
}

/// View a `u32` slice atomically for CAS-parallel BFS claims.
///
/// SAFETY: `AtomicU32` has `u32`'s size and alignment with compatible
/// in-memory representation; the exclusive borrow rules out concurrent
/// non-atomic access.
fn atomic_u32_view(dist: &mut [u32]) -> &[AtomicU32] {
    unsafe { std::slice::from_raw_parts(dist.as_ptr() as *const AtomicU32, dist.len()) }
}

/// Batched decremental Even–Shiloach tree on a digraph over `0..n`.
pub struct EsTree {
    n: usize,
    source: V,
    l_max: u32,
    dist: Vec<u32>,
    parent: Vec<V>,
    parent_prio: Vec<u64>,
    ins: Vec<PriorityList<InEntry>>,
    outs: Vec<Vec<V>>,
    /// directed edge (u → v) -> its priority inside `ins[v]`.
    prio_of: EdgeTable,
    /// Number of live *canonical* (undirected) edges: unordered pairs
    /// {u, v} with at least one orientation live. Kept incrementally so
    /// the trait view agrees with the undirected implementors.
    canon_live: usize,
    /// scratch: epoch marker for per-phase deduplication
    mark: Vec<u32>,
    /// scratch: per-vertex slot index, valid while `mark[v] == epoch`
    slot: Vec<u32>,
    epoch: u32,
    pub scan_work: WorkCounter,
    /// Cumulative statistics since construction.
    stats: BatchStats,
}

/// Typed builder for [`EsTree`] (Theorem 1.2).
#[derive(Debug, Clone)]
pub struct EsTreeBuilder {
    n: usize,
    source: V,
    l_max: u32,
}

impl EsTreeBuilder {
    /// BFS source vertex (default 0).
    pub fn source(mut self, source: V) -> Self {
        self.source = source;
        self
    }

    /// Maintained depth bound L (default 16).
    pub fn max_depth(mut self, l_max: u32) -> Self {
        self.l_max = l_max;
        self
    }

    /// Build from directed, prioritized edges `(u, v, priority)`.
    pub fn build(self, edges: &[(V, V, u64)]) -> Result<EsTree, ConfigError> {
        if self.n < 1 {
            return Err(ConfigError::TooFewVertices { n: self.n, min: 1 });
        }
        if self.source as usize >= self.n {
            return Err(ConfigError::VertexOutOfRange {
                vertex: self.source,
                n: self.n,
            });
        }
        if self.l_max < 1 {
            return Err(ConfigError::InvalidParam {
                name: "max_depth",
                reason: "the maintained depth L must be ≥ 1",
            });
        }
        for &(u, v, _) in edges {
            if u as usize >= self.n || v as usize >= self.n {
                return Err(ConfigError::VertexOutOfRange {
                    vertex: if u as usize >= self.n { u } else { v },
                    n: self.n,
                });
            }
        }
        Ok(EsTree::new(self.n, self.source, self.l_max, edges))
    }
}

impl EsTree {
    /// Typed builder: `EsTree::builder(n).source(s).max_depth(l)
    /// .build(&edges)`.
    pub fn builder(n: usize) -> EsTreeBuilder {
        EsTreeBuilder {
            n,
            source: 0,
            l_max: 16,
        }
    }
    /// Build from directed, prioritized edges `(u, v, priority)` — the
    /// priority orders `In(v)` descending and must be unique within each
    /// in-list. Duplicate directed edges are deduplicated as a batch,
    /// keeping the highest priority, so adversarial or generated
    /// workloads cannot abort construction. Initialization runs a
    /// level-synchronous BFS (Lemma 3.2) with parallel frontier
    /// expansion, and builds the per-vertex in/out adjacency by parallel
    /// sort + grouped scatter rather than sequential pushes.
    pub fn new(n: usize, source: V, l_max: u32, edges: &[(V, V, u64)]) -> Self {
        // --- Batch dedup, keeping the highest priority per (u, v). ---
        // Sorting (packed key, !priority) ascending clusters duplicates
        // with their highest-priority copy first; dedup-by-key keeps it.
        let mut fwd: Vec<(u64, u64)> = bds_par::par_map(edges, |&(u, v, p)| (pack(u, v), !p));
        bds_par::par_sort(&mut fwd);
        fwd.dedup_by_key(|&mut (k, _)| k);
        // Un-flip priorities; `fwd` stays sorted by packed key, i.e.
        // grouped by source vertex u.
        let fwd: Vec<(u64, u64)> = bds_par::par_map(&fwd, |&(k, np)| (k, !np));

        // prio_of: zero-copy bulk build from the sorted distinct batch.
        let prio_of = EdgeTable::from_sorted_batch(&fwd);

        // Canonical (undirected) edge count: each unordered pair {u, v}
        // counts once — at its u < v orientation if present, else at the
        // lone u > v orientation.
        let canon_live = fwd
            .iter()
            .filter(|&&(k, _)| {
                let (u, v) = unpack(k);
                u < v || !prio_of.contains(v, u)
            })
            .count();

        // --- Adjacency, built per vertex in parallel. ---
        // `fwd` groups out-edges by u; a reversed copy, sorted by
        // (target, descending priority), groups in-edges by v with each
        // group already in list order. Group boundaries come from binary
        // searches; every vertex's flat in-list then bulk-builds from
        // its slice with zero comparisons.
        let mut rev: Vec<(V, Reverse<u64>, V)> = bds_par::par_map(&fwd, |&(k, p)| {
            let (u, v) = unpack(k);
            (v, Reverse(p), u)
        });
        bds_par::par_sort(&mut rev);
        let ids: Vec<V> = (0..n as V).collect();
        let outs: Vec<Vec<V>> = bds_par::par_map(&ids, |&u| {
            let (lo, hi) = group_bounds(&fwd, u);
            fwd[lo..hi].iter().map(|&(k, _)| unpack(k).1).collect()
        });
        let ins: Vec<PriorityList<InEntry>> = bds_par::par_map(&ids, |&v| {
            let lo = rev.partition_point(|&(x, _, _)| x < v);
            let hi = rev.partition_point(|&(x, _, _)| x <= v);
            PriorityList::from_sorted_entries(
                rev[lo..hi]
                    .iter()
                    .map(|&(_, Reverse(p), u)| (p, InEntry { src: u })),
            )
        });

        // --- Level-synchronous BFS from the source, truncated at l_max,
        // with CAS-parallel frontier expansion above the GRAIN cutoff. ---
        let mut dist = vec![UNREACHED; n];
        dist[source as usize] = 0;
        let mut frontier = vec![source];
        let mut d = 0;
        while !frontier.is_empty() && d < l_max {
            d += 1;
            frontier = if frontier.len() < GRAIN || rayon::current_num_threads() <= 1 {
                let mut next = Vec::new();
                for &u in &frontier {
                    for &w in &outs[u as usize] {
                        if dist[w as usize] == UNREACHED {
                            dist[w as usize] = d;
                            next.push(w);
                        }
                    }
                }
                next
            } else {
                let adist = atomic_u32_view(&mut dist);
                frontier
                    .par_iter()
                    .flat_map_iter(|&u| {
                        let mut local = Vec::new();
                        for &w in &outs[u as usize] {
                            if adist[w as usize]
                                // ordering: Relaxed — first-writer-wins
                                // distance claim; levels are separated
                                // by a rayon join barrier, so no data
                                // is published through this cell.
                                .compare_exchange(
                                    UNREACHED,
                                    d,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                            {
                                local.push(w);
                            }
                        }
                        local
                    })
                    .collect()
            };
        }

        let mut tree = Self {
            n,
            source,
            l_max,
            dist,
            parent: vec![NO_VERTEX; n],
            parent_prio: vec![0; n],
            ins,
            outs,
            prio_of,
            canon_live,
            mark: vec![0; n],
            slot: vec![0; n],
            epoch: 0,
            scan_work: WorkCounter::new(),
            stats: BatchStats::default(),
        };
        // Initial parents: first (max-priority) in-entry at depth d-1.
        let dist = &tree.dist;
        // (vertex, matched (rank, priority, src)) per reachable vertex
        type ParentHit = (V, Option<(usize, u64, V)>);
        let found: Vec<ParentHit> = (0..n as V)
            .into_par_iter()
            .filter(|&v| dist[v as usize] >= 1 && dist[v as usize] != UNREACHED)
            .map(|v| {
                let want = dist[v as usize] - 1;
                let mut w = 0u64;
                let hit = tree.ins[v as usize]
                    .next_with(0, |_, rec| dist[rec.src as usize] == want, &mut w)
                    .map(|(r, p, rec)| (r, p, rec.src));
                (v, hit)
            })
            .collect();
        for (v, hit) in found {
            // bds:allow(no-unwrap): structure invariant named in the message; corrupt state must fail fast, not propagate.
            let (_, p, src) = hit.expect("reachable vertex must have a parent");
            tree.parent[v as usize] = src;
            tree.parent_prio[v as usize] = p;
        }
        tree
    }

    pub fn n(&self) -> usize {
        self.n
    }

    pub fn source(&self) -> V {
        self.source
    }

    pub fn l_max(&self) -> u32 {
        self.l_max
    }

    #[inline]
    pub fn dist(&self, v: V) -> u32 {
        self.dist[v as usize]
    }

    #[inline]
    pub fn parent(&self, v: V) -> Option<V> {
        let p = self.parent[v as usize];
        (p != NO_VERTEX).then_some(p)
    }

    /// Priority of `v`'s current parent entry in `In(v)`.
    pub fn parent_priority(&self, v: V) -> Option<u64> {
        self.parent(v).map(|_| self.parent_prio[v as usize])
    }

    pub fn has_edge(&self, u: V, v: V) -> bool {
        self.prio_of.contains(u, v)
    }

    /// Number of live *directed* edges (the native digraph view).
    pub fn num_edges(&self) -> usize {
        self.prio_of.len()
    }

    /// Number of live *canonical* (undirected) edges: unordered pairs
    /// with at least one live orientation. This is what the
    /// [`BatchDynamic`] trait view reports, so cross-structure harnesses
    /// see the same count as the eight undirected implementors.
    pub fn num_canonical_edges(&self) -> usize {
        self.canon_live
    }

    /// Tree edges `(parent, child)` of the current shortest-path tree.
    pub fn tree_edges(&self) -> Vec<(V, V)> {
        (0..self.n as V)
            .filter_map(|v| self.parent(v).map(|p| (p, v)))
            .collect()
    }

    fn next_epoch(&mut self) -> u32 {
        self.epoch += 1;
        self.epoch
    }

    /// Cumulative statistics since construction (`recourse` counts net
    /// parent-pointer changes).
    pub fn stats(&self) -> BatchStats {
        let mut s = self.stats;
        s.scan_steps = self.scan_work.get();
        s
    }

    /// Delete a batch of *directed* edges (callers delete both
    /// orientations of an undirected edge). Returns all parent-pointer
    /// changes plus this batch's statistics. Panics if an edge is absent.
    pub fn delete_batch(&mut self, edges: &[(V, V)]) -> (Vec<ParentChange>, BatchStats) {
        let mut stats = BatchStats::default();
        let work0 = self.scan_work.get();
        let mut changes: Vec<ParentChange> = Vec::new();
        // Per-level work queues: (vertex, resume_rank).
        let nl = self.l_max as usize + 2;
        let mut queues: Vec<Vec<(V, usize)>> = vec![Vec::new(); nl];

        // Phase 0: physically remove all deleted edges; seed the queues
        // with vertices that lost their parent edge.
        let mut seeds: Vec<(V, u64, V)> = Vec::new(); // (v, old parent prio, old parent)
        for &(u, v) in edges {
            let p = self
                .prio_of
                .remove(u, v)
                .unwrap_or_else(|| panic!("delete of absent edge ({u},{v})"));
            if u != v && !self.prio_of.contains(v, u) {
                // Last live orientation of {u, v} gone. Self-loops are
                // excluded on both sides of the count: the build filter
                // never counts them (a loop is its own reverse, so the
                // `contains` probe sees the edge itself), and canonical
                // edges cannot represent them.
                self.canon_live -= 1;
            }
            if self.parent[v as usize] == u && self.parent_prio[v as usize] == p {
                seeds.push((v, p, u));
            }
            // bds:allow(no-unwrap): structure invariant named in the message; corrupt state must fail fast, not propagate.
            self.ins[v as usize].remove(p).expect("in-entry present");
        }
        for (v, old_prio, old_parent) in seeds {
            let d = self.dist[v as usize];
            debug_assert!(d >= 1 && d != UNREACHED);
            self.parent[v as usize] = NO_VERTEX;
            // Resume where the removed entry used to sit (post-removal
            // rank); earlier entries were already rejected at this level.
            let resume = self.ins[v as usize].bound_rank(old_prio);
            queues[d as usize].push((v, resume));
            // Record the removal now; a found parent later overwrites.
            changes.push(ParentChange {
                vertex: v,
                old_parent,
                new_parent: NO_VERTEX,
            });
        }

        // Level-synchronous phases.
        for i in 1..=self.l_max {
            let q = std::mem::take(&mut queues[i as usize]);
            if q.is_empty() {
                continue;
            }
            // Deduplicate by vertex, keeping the smallest resume rank
            // (scanning earlier is always safe). The mark/slot scratch
            // arrays make this allocation-free.
            let epoch = self.next_epoch();
            let mut level: Vec<(V, usize)> = Vec::with_capacity(q.len());
            for (v, r) in q {
                // Stale entry: a vertex enqueued as the child of a bumped
                // parent may have been re-parented in the same phase (its
                // own scan, computed from the phase snapshot, succeeded).
                // Its state is already consistent — skip it. A vertex that
                // genuinely bumped re-enqueued itself at its new level.
                if self.dist[v as usize] != i {
                    continue;
                }
                if self.mark[v as usize] == epoch {
                    let s = self.slot[v as usize] as usize;
                    if r < level[s].1 {
                        level[s].1 = r;
                    }
                } else {
                    self.mark[v as usize] = epoch;
                    self.slot[v as usize] = level.len() as u32;
                    level.push((v, r));
                }
            }
            stats.vertices_touched += level.len() as u64;

            // Parallel read-only rescan: distances of level i-1 are
            // settled, and each task only reads In(v) of its own vertex.
            let dist = &self.dist;
            let ins = &self.ins;
            let want = i - 1;
            let results: Vec<(V, Option<(u64, V)>)> = if level.len() >= 64 {
                level
                    .par_iter()
                    .map(|&(v, resume)| {
                        let mut w = 0u64;
                        let hit = ins[v as usize]
                            .next_with(resume, |_, rec| dist[rec.src as usize] == want, &mut w)
                            .map(|(_, p, rec)| (p, rec.src));
                        self.scan_work.add(w);
                        (v, hit)
                    })
                    .collect()
            } else {
                let mut out = Vec::with_capacity(level.len());
                let mut w = 0u64;
                for &(v, resume) in &level {
                    let hit = ins[v as usize]
                        .next_with(resume, |_, rec| dist[rec.src as usize] == want, &mut w)
                        .map(|(_, p, rec)| (p, rec.src));
                    out.push((v, hit));
                }
                self.scan_work.add(w);
                out
            };

            // Sequential application of the results.
            for (v, hit) in results {
                match hit {
                    Some((p, src)) => {
                        let old = self.parent[v as usize];
                        if old != src || self.parent_prio[v as usize] != p {
                            self.parent[v as usize] = src;
                            self.parent_prio[v as usize] = p;
                            if old != src {
                                changes.push(ParentChange {
                                    vertex: v,
                                    old_parent: old,
                                    new_parent: src,
                                });
                            }
                        }
                    }
                    None => {
                        let old = self.parent[v as usize];
                        if i == self.l_max {
                            // Falls off the maintained depth.
                            self.dist[v as usize] = UNREACHED;
                            self.parent[v as usize] = NO_VERTEX;
                            if old != NO_VERTEX {
                                changes.push(ParentChange {
                                    vertex: v,
                                    old_parent: old,
                                    new_parent: NO_VERTEX,
                                });
                            }
                            // Depth-L vertices are tree leaves: no children.
                            continue;
                        }
                        self.dist[v as usize] = i + 1;
                        self.parent[v as usize] = NO_VERTEX;
                        if old != NO_VERTEX {
                            changes.push(ParentChange {
                                vertex: v,
                                old_parent: old,
                                new_parent: NO_VERTEX,
                            });
                        }
                        queues[i as usize + 1].push((v, 0));
                        // Tree children keep their scan position; their
                        // parent entry will simply fail the depth test.
                        for ci in 0..self.outs[v as usize].len() {
                            let c = self.outs[v as usize][ci];
                            if self.parent[c as usize] == v && self.prio_of.contains(v, c) {
                                let resume =
                                    self.ins[c as usize].bound_rank(self.parent_prio[c as usize]);
                                queues[i as usize + 1].push((c, resume));
                            }
                        }
                    }
                }
            }
        }

        // Collapse multiple changes per vertex into net changes.
        let net = self.net_changes(changes);
        stats.recourse = net.len() as u64;
        stats.scan_steps = self.scan_work.get() - work0;
        self.stats.vertices_touched += stats.vertices_touched;
        self.stats.recourse += stats.recourse;
        (net, stats)
    }

    /// Collapse a change log into net per-vertex changes (old = first old,
    /// new = last new), dropping no-ops. Allocation-free dedup via the
    /// same epoch-mark `mark`/`slot` scratch the phase loop uses.
    fn net_changes(&mut self, changes: Vec<ParentChange>) -> Vec<ParentChange> {
        let epoch = self.next_epoch();
        // (vertex, first old parent, last new parent), first-seen order.
        let mut acc: Vec<ParentChange> = Vec::new();
        for c in changes {
            if self.mark[c.vertex as usize] == epoch {
                acc[self.slot[c.vertex as usize] as usize].new_parent = c.new_parent;
            } else {
                self.mark[c.vertex as usize] = epoch;
                self.slot[c.vertex as usize] = acc.len() as u32;
                acc.push(c);
            }
        }
        acc.retain(|c| c.old_parent != c.new_parent);
        acc
    }

    /// Validation oracle: recompute BFS distances from scratch and check
    /// `dist`, plus structural parent invariants. Panics on violation.
    pub fn validate(&self) {
        // Reference BFS over the *current* edge set.
        let mut ref_dist = vec![UNREACHED; self.n];
        ref_dist[self.source as usize] = 0;
        let mut frontier = vec![self.source];
        let mut d = 0;
        while !frontier.is_empty() && d < self.l_max {
            d += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for &w in &self.outs[u as usize] {
                    if self.prio_of.contains(u, w) && ref_dist[w as usize] == UNREACHED {
                        ref_dist[w as usize] = d;
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
        assert_eq!(self.dist, ref_dist, "distance labels diverge from BFS");
        for v in 0..self.n as V {
            let dv = self.dist[v as usize];
            if dv == 0 || dv == UNREACHED {
                assert_eq!(self.parent[v as usize], NO_VERTEX, "vertex {v}");
                continue;
            }
            let p = self.parent[v as usize];
            assert_ne!(p, NO_VERTEX, "vertex {v} at depth {dv} lacks a parent");
            assert!(self.prio_of.contains(p, v), "parent edge ({p},{v}) dead");
            assert_eq!(
                self.dist[p as usize],
                dv - 1,
                "parent depth invariant at {v}"
            );
            // Invariant A1: no *valid candidate* strictly before the
            // parent entry in In(v).
            let rank = self.ins[v as usize]
                .rank_of(self.parent_prio[v as usize])
                // bds:allow(no-unwrap): structure invariant named in the message; corrupt state must fail fast, not propagate.
                .expect("parent entry present");
            let mut w = 0u64;
            let first = self.ins[v as usize]
                .next_with(0, |_, rec| self.dist[rec.src as usize] == dv - 1, &mut w)
                .map(|(r, _, _)| r);
            assert_eq!(
                first,
                Some(rank),
                "parent of {v} is not the first candidate"
            );
        }
    }
}

impl BatchDynamic for EsTree {
    fn num_vertices(&self) -> usize {
        self.n
    }

    /// Counts *canonical* (undirected) edges, like every other
    /// implementor: an unordered pair with one or both orientations live
    /// counts once. The directed count stays available through
    /// [`EsTree::num_edges`].
    fn num_live_edges(&self) -> usize {
        self.num_canonical_edges()
    }

    /// The maintained output set: the shortest-path tree edges, as
    /// canonical undirected edges.
    fn output_into(&self, out: &mut DeltaBuf) {
        out.clear();
        for v in 0..self.n as V {
            if let Some(p) = self.parent(v) {
                out.push_ins(Edge::new(p, v));
            }
        }
    }

    fn stats(&self) -> BatchStats {
        EsTree::stats(self)
    }
}

impl Decremental for EsTree {
    /// Undirected view of [`EsTree::delete_batch`]: deletes both
    /// orientations of every edge (the usual construction inserts both)
    /// and reports the tree-edge delta — each net parent change removes
    /// the old parent edge and adds the new one.
    fn delete_into(&mut self, deletions: &[Edge], out: &mut DeltaBuf) {
        out.clear();
        let dirs: Vec<(V, V)> = deletions
            .iter()
            .flat_map(|e| [(e.u, e.v), (e.v, e.u)])
            .collect();
        let (changes, _stats) = self.delete_batch(&dirs);
        for c in changes {
            if c.old_parent != NO_VERTEX {
                out.push_del(Edge::new(c.old_parent, c.vertex));
            }
            if c.new_parent != NO_VERTEX {
                out.push_ins(Edge::new(c.new_parent, c.vertex));
            }
        }
        // A parent swap (v adopting its former child as parent) touches
        // the same canonical edge in both directions — a set-level no-op.
        out.net();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bds_dstruct::FxHashMap;
    use bds_graph::gen;
    use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};

    /// Both orientations with per-source priorities (perm = identity).
    fn directed(edges: &[Edge]) -> Vec<(V, V, u64)> {
        let mut out = Vec::with_capacity(edges.len() * 2);
        for e in edges {
            out.push((e.u, e.v, ((e.u as u64) << 32) | e.u as u64));
            out.push((e.v, e.u, ((e.v as u64) << 32) | e.v as u64));
        }
        out
    }

    #[test]
    fn init_matches_bfs_and_validates() {
        let edges = gen::gnm_connected(120, 360, 5);
        let t = EsTree::new(120, 0, 16, &directed(&edges));
        t.validate();
        assert_eq!(t.dist(0), 0);
    }

    #[test]
    fn single_deletions_match_recompute() {
        let edges = gen::gnm_connected(80, 200, 8);
        let mut t = EsTree::new(80, 0, 12, &directed(&edges));
        let mut rng = StdRng::seed_from_u64(17);
        let mut live = edges.clone();
        live.shuffle(&mut rng);
        for _ in 0..120 {
            let Some(e) = live.pop() else { break };
            let (_changes, _stats) = t.delete_batch(&[(e.u, e.v), (e.v, e.u)]);
            t.validate();
        }
    }

    #[test]
    fn batch_deletions_match_recompute() {
        let edges = gen::gnm_connected(150, 500, 21);
        let mut t = EsTree::new(150, 0, 20, &directed(&edges));
        let mut rng = StdRng::seed_from_u64(33);
        let mut live = edges.clone();
        live.shuffle(&mut rng);
        while live.len() > 50 {
            let b = rng.gen_range(1..=40.min(live.len()));
            let batch: Vec<Edge> = live.split_off(live.len() - b);
            let dirs: Vec<(V, V)> = batch
                .iter()
                .flat_map(|e| [(e.u, e.v), (e.v, e.u)])
                .collect();
            t.delete_batch(&dirs);
            t.validate();
        }
    }

    #[test]
    fn duplicate_directed_edges_keep_highest_priority() {
        // The seed panicked here; duplicates must now dedup as a batch,
        // keeping the highest-priority copy per directed edge.
        let edges = vec![
            (0u32, 1u32, 5u64),
            (0, 1, 9), // duplicate: wins
            (0, 1, 2), // duplicate: dropped
            (1, 2, 7),
            (1, 0, 3),
            (2, 1, 4),
        ];
        let t = EsTree::new(3, 0, 4, &edges);
        assert_eq!(t.num_edges(), 4);
        assert_eq!(t.parent_priority(1), Some(9));
        t.validate();
        let mut t = t;
        // The deduped edge deletes cleanly (exactly one live copy).
        t.delete_batch(&[(0, 1)]);
        t.validate();
        assert!(!t.has_edge(0, 1));
    }

    #[test]
    fn canonical_edge_count_tracks_orientations() {
        // 0<->1 (both orientations), 1->2 and 2->1 (both), 0->2 (one):
        // 3 canonical edges, 5 directed ones.
        let edges = vec![
            (0u32, 1u32, 10u64),
            (1, 0, 11),
            (1, 2, 12),
            (2, 1, 13),
            (0, 2, 14),
        ];
        let mut t = EsTree::new(3, 0, 4, &edges);
        assert_eq!(t.num_edges(), 5);
        assert_eq!(t.num_canonical_edges(), 3);
        assert_eq!(BatchDynamic::num_live_edges(&t), 3);
        // Deleting one orientation of a symmetric pair keeps the
        // canonical edge alive; deleting the second kills it.
        t.delete_batch(&[(0, 1)]);
        assert_eq!(t.num_canonical_edges(), 3);
        t.delete_batch(&[(1, 0)]);
        assert_eq!(t.num_canonical_edges(), 2);
        // Deleting a lone orientation kills its canonical edge at once.
        t.delete_batch(&[(0, 2)]);
        assert_eq!(t.num_canonical_edges(), 1);
        assert_eq!(t.num_edges(), 2);
        t.delete_batch(&[(1, 2), (2, 1)]);
        assert_eq!(t.num_canonical_edges(), 0);
        assert_eq!(BatchDynamic::num_live_edges(&t), 0);
    }

    #[test]
    fn canonical_edge_count_ignores_self_loops() {
        // The raw directed constructor accepts self-loops; they are not
        // representable as canonical edges, so they must contribute zero
        // to the canonical count at build AND at delete (the delete used
        // to underflow the counter).
        let edges = vec![(0u32, 0u32, 1u64), (0, 1, 2), (1, 1, 3)];
        let mut t = EsTree::new(2, 0, 4, &edges);
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.num_canonical_edges(), 1);
        t.delete_batch(&[(0, 0)]);
        assert_eq!(t.num_canonical_edges(), 1);
        t.delete_batch(&[(0, 1)]);
        assert_eq!(t.num_canonical_edges(), 0);
        t.delete_batch(&[(1, 1)]);
        assert_eq!(t.num_canonical_edges(), 0);
    }

    #[test]
    fn truncation_at_l_max() {
        // Path 0-1-2-3-4 with L=2: vertices 3,4 unreached.
        let edges: Vec<Edge> = (0..4).map(|i| Edge::new(i, i + 1)).collect();
        let t = EsTree::new(5, 0, 2, &directed(&edges));
        assert_eq!(t.dist(2), 2);
        assert_eq!(t.dist(3), UNREACHED);
        assert_eq!(t.dist(4), UNREACHED);
        t.validate();
    }

    #[test]
    fn vertex_falls_off_depth() {
        // Cycle of 6 with L=3; deleting one cycle edge pushes the far side
        // beyond depth 3.
        let mut edges: Vec<Edge> = (0..5).map(|i| Edge::new(i, i + 1)).collect();
        edges.push(Edge::new(0, 5));
        let mut t = EsTree::new(6, 0, 3, &directed(&edges));
        t.validate();
        assert_eq!(t.dist(3), 3);
        // Delete (2,3): 3 must fall to UNREACHED (its other route 0-5-4-3
        // has length 3 — wait, that keeps it at 3).
        t.delete_batch(&[(2, 3), (3, 2)]);
        t.validate();
        assert_eq!(t.dist(3), 3); // via 0-5-4-3
        t.delete_batch(&[(4, 3), (3, 4)]);
        t.validate();
        assert_eq!(t.dist(3), UNREACHED);
    }

    #[test]
    fn parent_changes_replay_tree() {
        // Applying reported parent changes to a shadow copy must
        // reproduce tree_edges() — the property the spanner layers use.
        let edges = gen::gnm_connected(60, 150, 3);
        let mut t = EsTree::new(60, 0, 10, &directed(&edges));
        let mut shadow: FxHashMap<V, V> = t.tree_edges().into_iter().map(|(p, v)| (v, p)).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let mut live = edges.clone();
        live.shuffle(&mut rng);
        while live.len() > 30 {
            let b = rng.gen_range(1..=10.min(live.len()));
            let batch: Vec<Edge> = live.split_off(live.len() - b);
            let dirs: Vec<(V, V)> = batch
                .iter()
                .flat_map(|e| [(e.u, e.v), (e.v, e.u)])
                .collect();
            let (changes, _) = t.delete_batch(&dirs);
            for c in changes {
                if c.new_parent == NO_VERTEX {
                    shadow.remove(&c.vertex);
                } else {
                    shadow.insert(c.vertex, c.new_parent);
                }
            }
            let mut want = t.tree_edges();
            let mut got: Vec<(V, V)> = shadow.iter().map(|(&v, &p)| (p, v)).collect();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(want, got);
        }
    }

    #[test]
    fn amortized_scan_work_is_bounded() {
        // Work bound sanity: deleting every edge one by one costs
        // O(L · log n) amortized scan steps per deletion.
        let n = 200;
        let l = 12u32;
        let edges = gen::gnm_connected(n, 800, 12);
        let mut t = EsTree::new(n, 0, l, &directed(&edges));
        let mut live = edges.clone();
        let mut rng = StdRng::seed_from_u64(5);
        live.shuffle(&mut rng);
        let m = live.len();
        for e in live {
            t.delete_batch(&[(e.u, e.v), (e.v, e.u)]);
        }
        let per_edge = t.scan_work.get() as f64 / m as f64;
        // Generous constant; the point is it doesn't blow up with m².
        assert!(
            per_edge < (l as f64) * (n as f64).log2() * 4.0,
            "amortized scan work too high: {per_edge}"
        );
    }
}

//! **Theorem 1.2** — parallel batch-dynamic decremental single-source BFS.
//!
//! A batched Even–Shiloach tree over a directed graph: maintains the
//! shortest-path tree of depth ≤ L from a source under batches of edge
//! deletions, in O(L log n) amortized work per deleted edge and
//! level-synchronous phases (O(L log² n) depth per batch).
//!
//! [`shift`] builds the auxiliary "shifted" graph G′ of §3.3: a chain
//! p₀ → … → p_{t−1}, a shortcut p_{t−1−d_v} → v per vertex, and both
//! orientations of every original edge — reducing exponential-start-time
//! clustering to a depth-t decremental BFS.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod shift;
pub mod tree;

pub use bds_graph::api::BatchStats;
pub use shift::ShiftedGraph;
pub use tree::{EsTree, EsTreeBuilder, ParentChange, NO_VERTEX, UNREACHED};

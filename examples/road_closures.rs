//! Scenario: road-network maintenance. A city grid suffers batches of
//! road closures (decremental updates); a dispatch service keeps a
//! shallow shortest-path tree from the depot (Theorem 1.2) to answer
//! "how far is every block from the depot, up to L hops" after each batch
//! — without recomputing BFS from scratch.
//!
//! Run with: `cargo run --example road_closures --release`

use batch_spanners::gen;
use batch_spanners::prelude::*;
use bds_estree::UNREACHED;
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

fn directed(edges: &[Edge]) -> Vec<(V, V, u64)> {
    edges
        .iter()
        .flat_map(|e| {
            [
                (e.u, e.v, ((e.u as u64) << 32) | e.u as u64),
                (e.v, e.u, ((e.v as u64) << 32) | e.v as u64),
            ]
        })
        .collect()
}

fn main() {
    let (rows, cols) = (60usize, 60usize);
    let n = rows * cols;
    let edges = gen::grid(rows, cols);
    let depot: V = (rows / 2 * cols + cols / 2) as V; // city centre
    let l_max = 40u32;
    println!(
        "grid: {rows}×{cols} ({n} junctions, {} road segments)",
        edges.len()
    );

    let mut tree = EsTree::builder(n)
        .source(depot)
        .max_depth(l_max)
        .build(&directed(&edges))
        .expect("valid grid");
    let reachable = (0..n as V).filter(|&v| tree.dist(v) != UNREACHED).count();
    println!("depot {depot}: {reachable} junctions within {l_max} hops");

    // Close roads in batches through the unified Decremental interface;
    // the reusable DeltaBuf reports exactly which tree edges changed.
    let mut rng = StdRng::seed_from_u64(11);
    let mut open = edges.clone();
    open.shuffle(&mut rng);
    let mut delta = DeltaBuf::new();
    let mut closed = 0usize;
    for round in 1..=12 {
        let batch: Vec<Edge> = open.split_off(open.len().saturating_sub(150));
        closed += batch.len();
        tree.delete_into(&batch, &mut delta);
        if round % 3 == 0 {
            let reachable = (0..n as V).filter(|&v| tree.dist(v) != UNREACHED).count();
            println!(
                "closed {closed:>5} segments: {reachable:>5} reachable, \
                 tree changed by {:>4} edges this batch",
                delta.recourse()
            );
        }
    }
    let stats = BatchDynamic::stats(&tree);
    println!(
        "amortized repair work: {:.1} scan steps per closed segment \
         (O(L log n) bound ≈ {:.0}); {} net re-routes in total",
        stats.scan_steps as f64 / closed as f64,
        l_max as f64 * (n as f64).log2(),
        stats.recourse,
    );
}

//! Scenario: a serving tier. One process owns N spanner shards behind a
//! single `FullyDynamic` surface: update batches are routed by a
//! deterministic edge→shard hash, each shard absorbs its sub-batch
//! independently (in parallel on multicore hosts), and the merged delta
//! feeds a `ShardedView` read mirror that answers point queries for
//! concurrent readers at a stable epoch.
//!
//! Run with: `cargo run --example sharded_serving --release`

use batch_spanners::gen;
use batch_spanners::prelude::*;
use bds_graph::stream::UpdateStream;

fn main() {
    let n = 4_000;
    let shards = 4;
    let edges = gen::gnm_connected(n, 6 * n, 11);
    println!(
        "serving tier: n = {n}, m = {}, {shards} spanner shards (threads: {})",
        edges.len(),
        bds_par::threads_available()
    );

    // Each shard is an independent Theorem 1.1 structure over the edges
    // the partitioner routes to it; the factory seeds them differently.
    let mut engine = ShardedEngineBuilder::new(n)
        .shards(shards)
        .build_with(&edges, |i, shard_edges| {
            FullyDynamicSpanner::builder(n)
                .stretch(2)
                .seed(100 + i as u64)
                .build(shard_edges)
        })
        .expect("valid configuration");
    for i in 0..engine.num_shards() {
        println!(
            "  shard {i}: {} live edges, {} spanner edges",
            engine.shard(i).num_live_edges(),
            engine.shard(i).spanner_size()
        );
    }
    assert_eq!(engine.num_live_edges(), edges.len());

    // Read side: per-shard mirrors behind one epoch.
    let mut view = ShardedView::of(&engine);

    // The write loop: mixed batches in, one merged delta out. The view
    // advances once per batch; a clone pins an epoch for readers.
    let mut stream = UpdateStream::new(n, &edges, 7);
    let mut delta = DeltaBuf::new();
    let mut recourse = 0usize;
    let mut updates = 0usize;
    for round in 0..25 {
        let batch = stream.next_batch(40, 40);
        updates += batch.len();
        engine.apply_into(&batch, &mut delta);
        recourse += delta.recourse();
        let pinned = view.clone();
        view.apply(&engine);
        assert_eq!(view.epoch(), pinned.epoch() + 1);
        // The union mirror tracks the union of shard outputs exactly.
        let spanner_total: usize = (0..engine.num_shards())
            .map(|i| engine.shard(i).spanner_size())
            .sum();
        assert_eq!(view.len(), spanner_total, "round {round}");
        // Point reads route through the same partitioner the writes use:
        // the view answers for exactly the shard that owns the edge.
        for &e in batch.insertions.iter().take(5) {
            let shard = engine.partitioner().shard_of(e, engine.num_shards());
            assert_eq!(
                view.contains(e),
                engine.shard(shard).spanner_edges().contains(&e)
            );
        }
    }
    assert_eq!(engine.num_live_edges(), stream.live_edges().len());
    println!(
        "{updates} updates in 25 batches -> merged recourse {recourse}, \
         view at epoch {} with {} edges",
        view.epoch(),
        view.len()
    );

    // A traversal snapshot of the union, independent of later batches.
    let csr = view.to_csr();
    let total_degree: usize = (0..n as V).map(|v| csr.degree(v)).sum();
    assert_eq!(total_degree, 2 * view.len());
    println!("CSR snapshot: {} union edges materialized", view.len());
}

//! Scenario: an elastic serving tier. One process owns N spanner shards
//! (with a hot standby replica per lane) behind a single `FullyDynamic`
//! surface: update batches are routed by a consistent edge→shard hash,
//! each lane × replica absorbs its sub-batch independently (in parallel
//! on multicore hosts), and the merged delta feeds a `ShardedView` read
//! mirror that answers point queries for concurrent readers at a stable
//! epoch. Mid-run the tier is resharded 4 → 5 (only the re-routed edges
//! move) and a lane's primary replica is failed over, without ever
//! taking the engine offline.
//!
//! Run with: `cargo run --example sharded_serving --release`

use batch_spanners::gen;
use batch_spanners::prelude::*;
use bds_graph::stream::UpdateStream;

fn main() {
    let n = 4_000;
    let shards = 4;
    let edges = gen::gnm_connected(n, 6 * n, 11);
    println!(
        "serving tier: n = {n}, m = {}, {shards} spanner shards x 2 replicas (threads: {})",
        edges.len(),
        bds_par::threads_available()
    );

    // Each lane holds two independently built Theorem 1.1 structures
    // over the edges the consistent-hash partitioner routes to it; the
    // factory seeds deterministically per lane, so the replicas of a
    // lane are interchangeable.
    let mut engine = ShardedEngineBuilder::new(n)
        .shards(shards)
        .replicas(2)
        .partitioner(JumpPartitioner::new())
        .build_with(&edges, move |i, shard_edges| {
            FullyDynamicSpanner::builder(n)
                .stretch(2)
                .seed(100 + i as u64)
                .build(shard_edges)
        })
        .expect("valid configuration");
    for (i, load) in engine.lane_loads().iter().enumerate() {
        println!(
            "  lane {i}: {} live edges, {} spanner edges, {}/{} replicas",
            load.live_edges,
            engine.shard(i).spanner_size(),
            load.live_replicas,
            load.total_replicas
        );
    }
    assert_eq!(engine.num_live_edges(), edges.len());

    // Read side: per-lane mirrors behind one epoch, bound to the
    // engine's batch sequence — a skipped or double-applied batch would
    // panic instead of silently drifting.
    let mut view = ShardedView::of(&engine);

    // The write loop: mixed batches in, one merged delta out.
    let mut stream = UpdateStream::new(n, &edges, 7);
    let mut delta = DeltaBuf::new();
    let mut recourse = 0usize;
    let mut updates = 0usize;
    for round in 0..25 {
        let batch = stream.next_batch(40, 40);
        updates += batch.len();
        engine.apply_into(&batch, &mut delta);
        assert_eq!(delta.seq(), engine.seq());
        recourse += delta.recourse();
        let pinned = view.clone();
        view.apply(&engine);
        assert_eq!(view.epoch(), pinned.epoch() + 1);
        // The union mirror tracks the union of shard outputs exactly.
        let spanner_total: usize = (0..engine.num_shards())
            .map(|i| engine.shard(i).spanner_size())
            .sum();
        assert_eq!(view.len(), spanner_total, "round {round}");
        // Point reads route through the same partitioner the writes use.
        for &e in batch.insertions.iter().take(5) {
            let shard = engine.partitioner().shard_of(e, engine.num_shards());
            assert_eq!(
                view.contains(e),
                engine.shard(shard).spanner_edges().contains(&e)
            );
        }
    }
    assert_eq!(engine.num_live_edges(), stream.live_edges().len());
    println!(
        "{updates} updates in 25 batches -> merged recourse {recourse}, \
         view at epoch {} with {} edges",
        view.epoch(),
        view.len()
    );

    // Elastic scale-out: add a fifth shard in place. The jump
    // partitioner re-routes only ~1/5 of the edges; everything else
    // stays on its lane, and the maintained graph is untouched.
    let m_before = engine.num_live_edges();
    let stats = engine.reshard(5).expect("valid reshard");
    assert_eq!(engine.num_shards(), 5);
    assert_eq!(engine.num_live_edges(), m_before);
    println!(
        "reshard 4 -> 5: moved {} of {} edges ({:.1}%)",
        stats.moved_edges,
        stats.total_edges,
        100.0 * stats.moved_edges as f64 / stats.total_edges as f64
    );
    assert!(
        stats.moved_edges * 2 < stats.total_edges,
        "consistent hashing must move a minority of edges"
    );
    // The old view is bound to the old layout; rebuild and keep serving.
    view = ShardedView::of(&engine);
    let batch = stream.next_batch(40, 40);
    engine.apply_into(&batch, &mut delta);
    view.apply(&engine);
    assert_eq!(view.num_shards(), 5);
    // A hash layout over a G(n, m) graph is already even.
    assert_eq!(engine.rebalance_if_skewed(), RebalanceOutcome::Balanced);

    // Failover drill: drop lane 0's primary replica. Reads fail over to
    // its standby, writes keep fanning to the survivors, and a restored
    // replica is rebuilt from the lane's live edges.
    engine.drop_replica(0, 0).expect("standby exists");
    assert_eq!(engine.primary_of(0), 1);
    view = ShardedView::of(&engine); // failover bumps the layout epoch
    for _ in 0..5 {
        let batch = stream.next_batch(40, 40);
        engine.apply_into(&batch, &mut delta);
        view.apply(&engine);
    }
    assert_eq!(engine.num_live_edges(), stream.live_edges().len());
    engine.restore_replica(0, 0).expect("slot is free");
    assert_eq!(engine.live_replicas(0), 2);
    assert_eq!(
        engine.replica(0, 0).unwrap().num_live_edges(),
        engine.shard(0).num_live_edges()
    );
    println!(
        "failover drill: primary of lane 0 -> replica {}, restored standby carries {} live edges",
        engine.primary_of(0),
        engine.shard(0).num_live_edges()
    );

    // A traversal snapshot of the union, independent of later batches.
    let csr = view.to_csr();
    let total_degree: usize = (0..n as V).map(|v| csr.degree(v)).sum();
    assert_eq!(total_degree, 2 * view.len());
    println!("CSR snapshot: {} union edges materialized", view.len());
}

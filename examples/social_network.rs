//! Scenario: a social-network overlay. Friendship graphs are dense and
//! power-law; a *sparse* spanner (Theorem 1.3) keeps a linear-size
//! backbone with polylogarithmic stretch while friendships churn in
//! batches (the paper's motivating use: routing overlays / synchronizers).
//!
//! Run with: `cargo run --example social_network --release`

use batch_spanners::gen;
use batch_spanners::prelude::*;
use bds_graph::csr::edge_stretch;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn main() {
    let n = 3_000;
    // Preferential attachment ⇒ heavy-tailed degrees, like real overlays.
    let edges = gen::preferential_attachment(n, 8, 3);
    println!("social graph: n = {n}, m = {} (power-law)", edges.len());

    let mut backbone = SparseSpanner::builder(n)
        .seed(17)
        .build(&edges)
        .expect("valid configuration");
    println!(
        "backbone: {} edges = {:.2}·n  (graph has {:.2}·n)",
        backbone.spanner_size(),
        backbone.spanner_size() as f64 / n as f64,
        edges.len() as f64 / n as f64,
    );

    // Churn: every batch removes some friendships and adds new ones
    // (biased towards high-degree vertices, as in real networks).
    let mut rng = StdRng::seed_from_u64(23);
    let mut live: Vec<Edge> = edges.clone();
    let mut delta = DeltaBuf::new();
    let mut recourse = 0usize;
    let mut updates = 0usize;
    for _ in 0..30 {
        let mut dels = Vec::new();
        for _ in 0..20 {
            if live.is_empty() {
                break;
            }
            let i = rng.gen_range(0..live.len());
            dels.push(live.swap_remove(i));
        }
        let mut inss = Vec::new();
        while inss.len() < 20 {
            let a = rng.gen_range(0..n as V);
            let b = rng.gen_range(0..(n / 10) as V); // hubs attract
            if a == b {
                continue;
            }
            let e = Edge::new(a, b);
            if !live.contains(&e) && !inss.contains(&e) && !dels.contains(&e) {
                inss.push(e);
                live.push(e);
            }
        }
        updates += dels.len() + inss.len();
        // One mixed batch through the unified API, reusing the buffer.
        backbone.apply_into(
            &UpdateBatch {
                insertions: inss,
                deletions: dels,
            },
            &mut delta,
        );
        recourse += delta.recourse();
    }
    println!(
        "after churn: backbone = {:.2}·n, amortized backbone churn = {:.2} edges/update",
        backbone.spanner_size() as f64 / n as f64,
        recourse as f64 / updates as f64
    );
    let st = edge_stretch(n, &live, &backbone.spanner_edges(), 200, 5);
    println!(
        "backbone stretch: {st} (Õ(log n) guarantee, log2 n = {:.1})",
        (n as f64).log2()
    );
    assert!(st.is_finite());
}

//! Scenario: a live serving pipeline. Producer threads push raw edge
//! updates through bounded `IngestHandle`s; one writer thread owns a
//! sharded Theorem 1.1 spanner engine, coalesces the stream into
//! batches whose size it auto-tunes during warm-up, and publishes every
//! applied batch through double-buffered `ShardedView`s; reader threads
//! pin the freshest view with an RAII guard and answer *parallel batch
//! queries* (`batch_contains` / `batch_degree`) while the writer keeps
//! absorbing traffic.
//!
//! Run with: `cargo run --example serving_pipeline --release`

use batch_spanners::gen;
use batch_spanners::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

fn main() {
    let n = 2_000;
    let init = gen::gnm_connected(n, 4 * n, 5);
    println!(
        "serving pipeline: n = {n}, m0 = {}, 4 spanner shards (threads: {})",
        init.len(),
        bds_par::threads_available()
    );

    let engine = ShardedEngineBuilder::new(n)
        .shards(4)
        .build_with(&init, move |i, es| {
            FullyDynamicSpanner::builder(n)
                .stretch(2)
                .seed(40 + i as u64)
                .build(es)
        })
        .expect("valid configuration");

    let (serve, ingest) = ServeLoopBuilder::new(engine)
        .queue_capacity(8_192)
        .batch_policy(BatchPolicy::Auto)
        .build();
    let reads = serve.read_handle();
    let writer = serve.spawn();

    // --- Producers: two threads, each a deterministic churn script. ---
    // Inserting a live edge or deleting an absent one is fine: the
    // coalescer nets it out against its live-set mirror.
    let producers: Vec<_> = (0..2u64)
        .map(|p| {
            let tx = ingest.clone();
            std::thread::spawn(move || {
                let mut x = 0x9e3779b97f4a7c15u64.wrapping_mul(p + 1);
                let mut step = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x
                };
                for _ in 0..30_000u32 {
                    let a = (step() % n as u64) as V;
                    let b = (step() % n as u64) as V;
                    if a == b {
                        continue;
                    }
                    if step() % 3 == 0 {
                        tx.delete(a, b).unwrap();
                    } else {
                        tx.insert(a, b).unwrap();
                    }
                }
            })
        })
        .collect();
    drop(ingest); // writer exits once the producers hang up

    // --- Readers: pin-per-burst, batch queries against one epoch. ---
    let stop = Arc::new(AtomicBool::new(false));
    let answered = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..2u32)
        .map(|_| {
            let r = reads.clone();
            let stop = Arc::clone(&stop);
            let answered = Arc::clone(&answered);
            std::thread::spawn(move || {
                let queries: Vec<Edge> = (0..(n as V - 1)).map(|u| Edge::new(u, u + 1)).collect();
                let verts: Vec<V> = (0..n as V).collect();
                let (mut hits, mut degs) = (Vec::new(), Vec::new());
                while !stop.load(Relaxed) {
                    let g = r.pin(); // RAII: released at end of scope
                    g.batch_contains(&queries, &mut hits);
                    g.batch_degree(&verts, &mut degs);
                    // Within one pin, answers are mutually consistent.
                    let total: u64 = degs.iter().map(|&d| d as u64).sum();
                    assert_eq!(total, 2 * g.len() as u64, "torn read");
                    answered.fetch_add((hits.len() + degs.len()) as u64, Relaxed);
                }
            })
        })
        .collect();

    for p in producers {
        p.join().unwrap();
    }
    let report = writer.join().unwrap();
    stop.store(true, Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    println!(
        "writer: {} raw updates -> {} batches (dropped {} no-ops, cancelled {} pairs)",
        report.raw_updates, report.batches, report.dropped_noops, report.cancelled_pairs
    );
    println!("auto-tune curve (updates/s by batch size):");
    for p in &report.tune_curve {
        println!("  {:>5}: {:>12.0}", p.batch_size, p.updates_per_sec);
    }
    println!(
        "chosen batch size: {} · apply total {:.1}ms (max {:.2}ms) · pin-wait {:.3}ms",
        report.chosen_batch_size,
        report.apply_ns_total as f64 / 1e6,
        report.apply_ns_max as f64 / 1e6,
        report.pin_wait_ns as f64 / 1e6,
    );
    println!(
        "readers answered {} batch queries concurrently",
        answered.load(Relaxed)
    );

    // The handles outlive the loop: late readers still pin the final
    // state, which mirrors every applied batch.
    let g = reads.pin_at_least(report.final_seq);
    assert_eq!(g.seq(), report.final_seq);
    println!(
        "final published view: seq {} with {} spanner edges",
        g.seq(),
        g.len()
    );
}

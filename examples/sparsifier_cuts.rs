//! Scenario: streaming cut monitoring. A service watches the minimum-ish
//! cuts of a mutating network but cannot afford to store it densely: it
//! maintains a (1±ε) spectral sparsifier (Theorem 1.6) and evaluates cuts
//! on the sparsifier instead.
//!
//! Run with: `cargo run --example sparsifier_cuts --release`

use batch_spanners::gen;
use batch_spanners::prelude::*;
use bds_graph::cuts::{cut_size_unit, cut_weight, indicator};
use bds_graph::stream::UpdateStream;

fn main() {
    let n = 1_000;
    // Two dense communities with a planted sparse cut between them.
    let (edges, planted) = gen::planted_cut(n, 6 * n, 40, 5);
    println!(
        "network: n = {n}, m = {}, planted cut of {planted} edges between the halves",
        edges.len()
    );

    let t = 4; // bundle depth: the quality knob
    let mut sp = FullyDynamicSparsifier::builder(n)
        .depth(t)
        .seed(9)
        .build(&edges)
        .expect("valid configuration");
    println!(
        "sparsifier: {} weighted edges ({:.1}% of m)",
        sp.sparsifier_size(),
        100.0 * sp.sparsifier_size() as f64 / edges.len() as f64
    );

    let half: Vec<V> = (0..n as V / 2).collect();
    let in_s = indicator(n, &half);
    let mut stream = UpdateStream::new(n, &edges, 31);
    let mut delta = DeltaBuf::new();
    for round in 1..=5 {
        let batch = stream.next_batch(100, 100);
        // One atomic mixed batch; the weighted delta lands in the
        // reusable buffer (weight lane populated).
        sp.apply_into(&batch, &mut delta);
        let exact = cut_size_unit(stream.live_edges(), &in_s);
        let approx = cut_weight(&sp.sparsifier_edges(), &in_s);
        println!(
            "round {round}: planted cut exact = {exact:.0}, sparsifier estimate = {approx:.0} \
             (ratio {:.2})",
            approx / exact
        );
    }
    println!(
        "done: cut estimates track the exact values on {} stored edges",
        sp.sparsifier_size()
    );
}

//! Scenario: live connected-components serving for a social graph.
//! Producer threads ingest friend/unfriend events (edge link/cut)
//! through bounded `IngestHandle`s; one writer thread owns a sharded
//! [`BatchConnectivity`] engine and publishes every applied batch
//! through double-buffered `ShardedView`s; reader threads pin a view
//! with an RAII guard, flatten its unioned shard forests into a
//! [`ConnView`], and answer *batch* "are we in the same community?"
//! queries while the writer keeps absorbing churn. The union of
//! per-shard spanning forests preserves connectivity of the union
//! graph, so the flattened view answers global connectivity exactly —
//! the final state is checked against a union-find oracle.
//!
//! Run with: `cargo run --example social_components --release`

use batch_spanners::prelude::*;
use bds_dstruct::FxHashSet;
use bds_graph::UnionFind;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

const OPS_PER_PRODUCER: u32 = 30_000;
/// Friendships form inside 100-user villages, so the component
/// structure stays interesting under churn instead of collapsing into
/// one giant component.
const VILLAGE: u64 = 100;

/// Deterministic per-producer event script. Producer `p` only touches
/// edges whose endpoint parity it owns, so the two scripts commute and
/// the final friendship set is independent of thread interleaving.
fn script(p: u64, n: usize, mut f: impl FnMut(bool, V, V)) {
    let mut x = 0x9e3779b97f4a7c15u64.wrapping_mul(p + 1);
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut emitted = 0;
    while emitted < OPS_PER_PRODUCER {
        let a = step() % n as u64;
        let b = a - (a % VILLAGE) + step() % VILLAGE;
        if a == b || ((a ^ b) & 1) != p {
            continue;
        }
        f(step() % 3 == 0, a as V, b as V);
        emitted += 1;
    }
}

fn main() {
    let n = 2_000;
    println!(
        "social components: n = {n} users in {} villages, 4 connectivity shards (threads: {})",
        n as u64 / VILLAGE,
        bds_par::threads_available()
    );

    // Communities form live: the engine starts with no friendships.
    let engine = ShardedEngineBuilder::new(n)
        .shards(4)
        .build_with(&[], move |_, es| BatchConnectivity::builder(n).build(es))
        .expect("valid configuration");

    let (serve, ingest) = ServeLoopBuilder::new(engine)
        .queue_capacity(8_192)
        .batch_policy(BatchPolicy::Fixed(128))
        .build();
    let reads = serve.read_handle();
    let writer = serve.spawn();

    // --- Producers: friend/unfriend churn on disjoint edge sets. ----
    // Deleting an absent friendship or re-adding a live one is fine:
    // the coalescer nets it out against its live-set mirror.
    let producers: Vec<_> = (0..2u64)
        .map(|p| {
            let tx = ingest.clone();
            std::thread::spawn(move || {
                script(p, n, |unfriend, a, b| {
                    if unfriend {
                        tx.delete(a, b).unwrap();
                    } else {
                        tx.insert(a, b).unwrap();
                    }
                });
            })
        })
        .collect();
    drop(ingest); // writer exits once the producers hang up

    // --- Readers: pin a view, flatten, answer community queries. ----
    let stop = Arc::new(AtomicBool::new(false));
    let answered = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..2u32)
        .map(|r| {
            let reads = reads.clone();
            let stop = Arc::clone(&stop);
            let answered = Arc::clone(&answered);
            std::thread::spawn(move || {
                let pairs: Vec<(V, V)> = (0..512)
                    .map(|i: u64| {
                        let h = i.wrapping_mul(0x2545f4914f6cdd1d + r as u64);
                        ((h % n as u64) as V, (h >> 32) as V % n as V)
                    })
                    .collect();
                let mut hits = Vec::new();
                while !stop.load(Relaxed) {
                    let g = reads.pin(); // RAII: released at end of scope
                    let cv = ConnView::from_edges(n, &g.edges());
                    cv.batch_connected(&pairs, &mut hits);
                    // Within one pin, answers are mutually consistent:
                    // every mirrored forest edge connects its endpoints.
                    for e in g.edges() {
                        assert!(cv.connected(e.u, e.v), "torn read");
                    }
                    answered.fetch_add(hits.len() as u64, Relaxed);
                }
            })
        })
        .collect();

    for p in producers {
        p.join().unwrap();
    }
    let report = writer.join().unwrap();
    stop.store(true, Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    println!(
        "writer: {} raw events -> {} batches (dropped {} no-ops, cancelled {} pairs)",
        report.raw_updates, report.batches, report.dropped_noops, report.cancelled_pairs
    );
    println!(
        "readers answered {} community queries concurrently",
        answered.load(Relaxed)
    );

    // --- Oracle: replay both scripts; interleaving cannot matter. ---
    let mut live: FxHashSet<Edge> = FxHashSet::default();
    for p in 0..2u64 {
        script(p, n, |unfriend, a, b| {
            let e = Edge::new(a, b);
            if unfriend {
                live.remove(&e);
            } else {
                live.insert(e);
            }
        });
    }
    let mut uf = UnionFind::new(n);
    for e in &live {
        uf.union(e.u, e.v);
    }

    let g = reads.pin_at_least(report.final_seq);
    let cv = ConnView::from_edges(n, &g.edges());
    assert_eq!(cv.num_components(), uf.components(), "component count");
    for a in 0..n as V {
        for b in [(a + 1) % n as V, (a * 7 + 3) % n as V] {
            assert_eq!(cv.connected(a, b), uf.same(a, b), "pair ({a}, {b})");
        }
    }
    let mut sizes: Vec<u32> = (0..n as V)
        .filter(|&v| cv.component_id(v) == v)
        .map(|v| cv.component_size(v))
        .collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "final view: seq {} · {} live friendships · {} communities, largest {:?}",
        g.seq(),
        live.len(),
        cv.num_components(),
        &sizes[..sizes.len().min(5)]
    );
    println!("every answer matched the union-find oracle: done");
}

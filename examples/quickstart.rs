//! Quickstart: maintain a (2k−1)-spanner of an evolving graph with the
//! unified batch-dynamic API — typed builder in, reusable [`DeltaBuf`]
//! out, and a [`SpannerView`] mirror on the read side.
//!
//! Run with: `cargo run --example quickstart --release`

use batch_spanners::gen;
use batch_spanners::prelude::*;
use bds_graph::csr::edge_stretch;
use bds_graph::stream::UpdateStream;

fn main() {
    let n = 2_000;
    let k = 3; // stretch 2k−1 = 5
    let edges = gen::gnm_connected(n, 8 * n, 7);
    println!("graph: n = {n}, m = {}", edges.len());

    let mut spanner = FullyDynamicSpanner::builder(n)
        .stretch(k)
        .seed(42)
        .build(&edges)
        .expect("valid configuration");
    println!(
        "initial spanner: {} edges ({:.1}% of the graph), stretch bound {}",
        spanner.spanner_size(),
        100.0 * spanner.spanner_size() as f64 / edges.len() as f64,
        2 * k - 1
    );

    // A read-side mirror: serves contains/degree queries off a stable
    // epoch while the writer applies the next batch.
    let mut view = SpannerView::from_output(n, &spanner);

    // Drive 50 batches of mixed updates through ONE reusable delta
    // buffer — the steady-state loop allocates nothing on the delta path.
    let mut stream = UpdateStream::new(n, &edges, 99);
    let mut delta = DeltaBuf::new();
    let mut total_recourse = 0usize;
    let mut total_updates = 0usize;
    for round in 1..=50 {
        let batch = stream.next_batch(40, 40);
        total_updates += batch.len();
        spanner.apply_into(&batch, &mut delta);
        view.apply(&delta);
        total_recourse += delta.recourse();
        if round % 10 == 0 {
            println!(
                "after {round} batches (epoch {}): m = {}, spanner = {}, \
                 amortized |δH|/update = {:.2}",
                view.epoch(),
                spanner.num_live_edges(),
                spanner.spanner_size(),
                total_recourse as f64 / total_updates as f64
            );
        }
    }
    assert_eq!(view.len(), spanner.spanner_size(), "mirror tracks exactly");

    // Verify the guarantee on the final graph via a CSR snapshot of the
    // view's current epoch.
    let snapshot = view.to_csr();
    let st = edge_stretch(n, stream.live_edges(), &view.edges(), 300, 5);
    println!(
        "measured stretch on 300 sampled sources: {st} (bound {}), \
         snapshot: {} vertices / {} edges",
        2 * k - 1,
        snapshot.n(),
        snapshot.m(),
    );
    assert!(st <= (2 * k - 1) as f64);
    println!("ok: stretch bound holds after {total_updates} updates");
}

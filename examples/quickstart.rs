//! Quickstart: maintain a (2k−1)-spanner of an evolving graph.
//!
//! Run with: `cargo run --example quickstart --release`

use batch_spanners::gen;
use batch_spanners::prelude::*;
use bds_graph::csr::edge_stretch;
use bds_graph::stream::UpdateStream;

fn main() {
    let n = 2_000;
    let k = 3; // stretch 2k−1 = 5
    let edges = gen::gnm_connected(n, 8 * n, 7);
    println!("graph: n = {n}, m = {}", edges.len());

    let mut spanner = FullyDynamicSpanner::new(n, k, &edges, 42);
    println!(
        "initial spanner: {} edges ({:.1}% of the graph), stretch bound {}",
        spanner.spanner_size(),
        100.0 * spanner.spanner_size() as f64 / edges.len() as f64,
        2 * k - 1
    );

    // Drive 50 batches of mixed updates and track the recourse.
    let mut stream = UpdateStream::new(n, &edges, 99);
    let mut total_recourse = 0usize;
    let mut total_updates = 0usize;
    for round in 1..=50 {
        let batch = stream.next_batch(40, 40);
        total_updates += batch.len();
        let delta = spanner.process_batch(&batch);
        total_recourse += delta.recourse();
        if round % 10 == 0 {
            println!(
                "after {round} batches: m = {}, spanner = {}, amortized |δH|/update = {:.2}",
                spanner.num_live_edges(),
                spanner.spanner_size(),
                total_recourse as f64 / total_updates as f64
            );
        }
    }

    // Verify the guarantee on the final graph.
    let st = edge_stretch(n, stream.live_edges(), &spanner.spanner_edges(), 300, 5);
    println!(
        "measured stretch on 300 sampled sources: {st} (bound {})",
        2 * k - 1
    );
    assert!(st <= (2 * k - 1) as f64);
    println!("ok: stretch bound holds after {total_updates} updates");
}

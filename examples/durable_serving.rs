//! Scenario: crash-safe serving. A durable [`ServeLoop`] write-ahead
//! logs every applied batch, the process dies mid-stream (simulated by
//! a shard that panics after a set number of batches), and
//! [`wal::recover`] rebuilds the engine from the snapshot + log —
//! losing nothing any reader ever observed. A [`FollowerView`] tails
//! the same log to keep a warm standby mirror.
//!
//! Run with: `cargo run --example durable_serving --release`

use std::cell::Cell;
use std::fs;
use std::path::PathBuf;

use batch_spanners::gen;
use batch_spanners::prelude::*;
use batch_spanners::wal;
use bds_dstruct::FxHashSet;

/// A shard wrapper that injects a crash: it panics on its
/// `applies_left`-th batch, taking the writer thread down exactly like
/// a process fault in the middle of the pipeline.
struct CrashAfter {
    inner: MirrorSpanner,
    applies_left: Cell<u32>,
}

impl BatchDynamic for CrashAfter {
    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }
    fn num_live_edges(&self) -> usize {
        self.inner.num_live_edges()
    }
    fn output_into(&self, out: &mut DeltaBuf) {
        self.inner.output_into(out)
    }
    fn stats(&self) -> BatchStats {
        self.inner.stats()
    }
}

impl Decremental for CrashAfter {
    fn delete_into(&mut self, deletions: &[Edge], out: &mut DeltaBuf) {
        self.inner.delete_into(deletions, out);
    }
}

impl FullyDynamic for CrashAfter {
    fn insert_into(&mut self, insertions: &[Edge], out: &mut DeltaBuf) {
        self.inner.insert_into(insertions, out);
    }
    fn apply_into(&mut self, batch: &UpdateBatch, out: &mut DeltaBuf) {
        let left = self.applies_left.get();
        assert!(left > 0, "injected crash: power cord yanked");
        self.applies_left.set(left - 1);
        self.inner.apply_into(batch, out);
    }
}

fn main() {
    let n = 5_000;
    let init = gen::gnm_connected(n, 4 * n, 17);
    let dir = PathBuf::from("target/durable_serving");
    fs::create_dir_all(&dir).expect("example scratch dir");
    let log = dir.join("engine.wal");
    let snap = dir.join("engine.snap");

    // --- 1. Serve durably until the injected crash ------------------
    let engine = ShardedEngineBuilder::new(n)
        .shards(4)
        .build_with(&init, move |_, es| {
            Ok::<_, ConfigError>(CrashAfter {
                inner: MirrorSpanner::build(n, es)?,
                applies_left: Cell::new(12),
            })
        })
        .expect("valid configuration");
    let (serve, ingest) = ServeLoopBuilder::new(engine)
        .queue_capacity(256)
        .batch_policy(BatchPolicy::Fixed(64))
        .durability(
            WalConfig::new(&log)
                .fsync(FsyncPolicy::EveryBatch) // zero loss window
                .snapshot(&snap, 8), // re-snapshot every 8 batches
        )
        .build();
    let reads = serve.read_handle();
    let writer = serve.spawn();

    let mut stream = bds_graph::stream::UpdateStream::new(n, &init, 99);
    let mut sent = 0usize;
    'feed: for _ in 0..400 {
        let batch = stream.next_batch(20, 20);
        for &e in &batch.insertions {
            if ingest.insert(e.u, e.v).is_err() {
                break 'feed;
            }
            sent += 1;
        }
        for &e in &batch.deletions {
            if ingest.delete(e.u, e.v).is_err() {
                break 'feed;
            }
            sent += 1;
        }
    }
    // The writer is gone mid-stream; producers saw a *typed* death.
    let err = ingest.insert(0, 1).unwrap_err();
    drop(ingest);
    assert!(writer.join().is_err(), "the injected fault must fire");
    let survivors = reads.pin();
    println!(
        "crashed after publishing seq {} ({} raw updates sent, producers saw: {err})",
        survivors.seq(),
        sent
    );

    // --- 2. Recover: snapshot + log tail --------------------------------
    let t0 = std::time::Instant::now();
    let r = wal::recover(
        &snap,
        &log,
        ShardedEngineBuilder::new(n).shards(4),
        move |_, es| MirrorSpanner::build(n, es),
    )
    .expect("artifacts are intact");
    let dt = t0.elapsed();
    println!(
        "recovered to seq {} ({} batches replayed past the snapshot, torn tail: {}) in {:.1} ms",
        r.seq,
        r.replayed,
        r.torn_tail,
        dt.as_secs_f64() * 1e3
    );

    // Write-ahead ordering: recovery is never behind a published view.
    assert!(r.seq >= survivors.seq(), "a published batch was lost");
    let recovered: FxHashSet<Edge> = r.engine.live_input_edges().collect();
    let published: FxHashSet<Edge> = survivors.edges().into_iter().collect();
    if r.seq == survivors.seq() {
        assert_eq!(recovered, published);
    }
    println!(
        "recovered engine: {} live edges (published view had {})",
        recovered.len(),
        published.len()
    );

    // --- 3. A follower mirror tails the same log ------------------------
    let mut fv = wal::FollowerView::open(&log).expect("log has a header");
    let applied = fv.catch_up().expect("log tail is clean");
    println!(
        "follower caught up to seq {} ({} records applied); mirrors {} edges",
        fv.seq(),
        applied,
        fv.view().len()
    );
    assert_eq!(fv.seq(), survivors.seq(), "follower trails published state");
    let follower: FxHashSet<Edge> = fv.view().edges().into_iter().collect();
    assert_eq!(follower, published, "follower mirrors the published view");

    println!("crash → typed error → exact recovery: done");
}

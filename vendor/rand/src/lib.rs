//! Offline shim for the subset of `rand` 0.8 used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of APIs it needs: a seedable deterministic
//! generator ([`rngs::StdRng`], an xoshiro256** core seeded through
//! splitmix64), the [`Rng`] extension methods `gen` / `gen_range` /
//! `gen_bool`, and [`seq::SliceRandom::shuffle`]. Streams are stable
//! across runs for a fixed seed — the only property the algorithms and
//! tests rely on — but are NOT the same streams as upstream `rand`.

#![deny(unsafe_op_in_unsafe_fn)]

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

mod ranges {
    /// Types that can parameterize `Rng::gen_range`.
    pub trait SampleRange<T> {
        fn sample(self, word: u64) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                #[inline]
                fn sample(self, word: u64) -> $t {
                    assert!(self.start < self.end, "empty gen_range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                    self.start.wrapping_add((word as u128 % span) as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                #[inline]
                fn sample(self, word: u64) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty gen_range");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    lo.wrapping_add((word as u128 % span) as $t)
                }
            }
        )*};
    }
    int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

    impl SampleRange<f64> for core::ops::Range<f64> {
        #[inline]
        fn sample(self, word: u64) -> f64 {
            assert!(self.start < self.end, "empty gen_range");
            // 53 uniform mantissa bits in [0, 1).
            let unit = (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }
}
pub use ranges::SampleRange;

/// Sampling a value of `T` from uniform random words (the shim's
/// stand-in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    fn from_word(word: u64) -> Self;
}

macro_rules! std_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_word(word: u64) -> $t {
                word as $t
            }
        }
    )*};
}
std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn from_word(word: u64) -> bool {
        word & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn from_word(word: u64) -> f64 {
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Extension methods every `RngCore` gets, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::from_word(self.next_u64())
    }

    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.next_u64())
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool({p})");
        let unit: f64 = self.gen();
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            Self {
                s: [
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                    splitmix64(&mut x),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice extensions, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on empty slices.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5u32..=5);
            assert_eq!(y, 5);
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut r = StdRng::seed_from_u64(3);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }
}

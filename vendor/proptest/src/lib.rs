//! Offline shim for the subset of `proptest` used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the `proptest!` macro, `Strategy` with `prop_map`, integer
//! range and `any::<T>()` strategies, tuple composition,
//! `prop::collection::vec`, and the `prop_assert*` macros. Each test
//! case runs with a deterministic per-case RNG; there is no shrinking —
//! a failing case panics with the case index so it can be replayed by
//! reading the seed (cases are numbered deterministically).

#![deny(unsafe_op_in_unsafe_fn)]

pub mod test_runner {
    use rand::{rngs::StdRng, SeedableRng};

    /// Per-case deterministic RNG.
    pub struct TestRng(pub StdRng);

    impl TestRng {
        pub fn for_case(case: u32) -> Self {
            Self(StdRng::seed_from_u64(
                0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1),
            ))
        }
    }

    /// Mirror of `proptest::test_runner::Config` (cases only).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;

    /// A generator of values; the shim's `Strategy` has no shrinking.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<R, F: Fn(Self::Value) -> R>(self, f: F) -> MapStrategy<Self, F>
        where
            Self: Sized,
        {
            MapStrategy { base: self, f }
        }
    }

    pub struct MapStrategy<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, R, F: Fn(S::Value) -> R> Strategy for MapStrategy<S, F> {
        type Value = R;

        fn generate(&self, rng: &mut TestRng) -> R {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i32, i64);

    /// `any::<T>()` — full-range values.
    pub struct Any<T>(core::marker::PhantomData<T>);

    pub fn any<T>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    macro_rules! any_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen()
                }
            }
        )*};
    }
    any_strategy!(u8, u16, u32, u64, usize, i32, i64, bool);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    pub mod collection {
        use super::{Strategy, TestRng};
        use rand::Rng;

        pub struct VecStrategy<S> {
            element: S,
            size: core::ops::Range<usize>,
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.0.gen_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// The `prop::` path used by callers (`prop::collection::vec`).
pub mod prop {
    pub use super::strategy::collection;
}

pub mod prelude {
    pub use super::prop;
    pub use super::strategy::{any, Strategy};
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` block macro. Each `#[test] fn name(pat in strategy,
/// ...) { body }` becomes a zero-argument test running `cases`
/// deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::Config::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let __strategies = ($($strat,)+);
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                    $crate::__proptest_bind!(__strategies, __rng, __case, ($($pat),+));
                    $body
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($strats:ident, $rng:ident, $case:ident, ($p0:pat)) => {
        let $p0 = $crate::strategy::Strategy::generate(&$strats.0, &mut $rng);
    };
    ($strats:ident, $rng:ident, $case:ident, ($p0:pat, $p1:pat)) => {
        let $p0 = $crate::strategy::Strategy::generate(&$strats.0, &mut $rng);
        let $p1 = $crate::strategy::Strategy::generate(&$strats.1, &mut $rng);
    };
    ($strats:ident, $rng:ident, $case:ident, ($p0:pat, $p1:pat, $p2:pat)) => {
        let $p0 = $crate::strategy::Strategy::generate(&$strats.0, &mut $rng);
        let $p1 = $crate::strategy::Strategy::generate(&$strats.1, &mut $rng);
        let $p2 = $crate::strategy::Strategy::generate(&$strats.2, &mut $rng);
    };
    ($strats:ident, $rng:ident, $case:ident, ($p0:pat, $p1:pat, $p2:pat, $p3:pat)) => {
        let $p0 = $crate::strategy::Strategy::generate(&$strats.0, &mut $rng);
        let $p1 = $crate::strategy::Strategy::generate(&$strats.1, &mut $rng);
        let $p2 = $crate::strategy::Strategy::generate(&$strats.2, &mut $rng);
        let $p3 = $crate::strategy::Strategy::generate(&$strats.3, &mut $rng);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in 3usize..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((3..=5).contains(&y));
        }

        #[test]
        fn mapped_tuples_compose((a, b) in (0u32..10, 0u32..10).prop_map(|(x, y)| (x, x + y))) {
            prop_assert!(b >= a);
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(any::<u16>(), 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let mut r1 = crate::test_runner::TestRng::for_case(3);
        let mut r2 = crate::test_runner::TestRng::for_case(3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}

//! Offline shim for the subset of `rayon` used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the parallel-iterator surface the workspace actually
//! calls — `par_iter` / `par_iter_mut` / `into_par_iter` / `par_chunks`,
//! the `map` / `filter` / `filter_map` / `flat_map_iter` / `enumerate` /
//! `zip` adaptors, the `collect` / `for_each` / `max_by_key` terminals,
//! the parallel sorts, and the `ThreadPoolBuilder::install` thread-count
//! scoping — on top of `std::thread::scope`.
//!
//! Execution model: a chain of adaptors is split into contiguous pieces
//! (each piece carries its closures behind an `Arc`), every piece is
//! materialized sequentially on its own scoped thread, and the per-piece
//! outputs are concatenated in order — so all order-preserving semantics
//! of the real rayon hold. Below [`MIN_PAR`] items, or when the effective
//! thread count is 1, everything runs sequentially on the caller.

#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Below this many (estimated) items a chain runs sequentially. Kept
/// minimal: callers in this workspace gate parallelism by input size
/// themselves (`bds_par::GRAIN`), and chunked chains legitimately carry
/// very few — but individually large — items.
pub const MIN_PAR: usize = 2;

// ---------------------------------------------------------------------------
// Thread-count plumbing
// ---------------------------------------------------------------------------

static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_OVERRIDE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn hardware_threads() -> usize {
    let cached = DEFAULT_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    // `BDS_THREADS=k` pins the default worker count (explicit
    // `ThreadPoolBuilder` pools still override it). This is how CI
    // exercises the parallel paths on hosts whose hardware parallelism
    // is 1 — without it, every shim primitive would silently run the
    // sequential branch there.
    let n = std::env::var("BDS_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    DEFAULT_THREADS.store(n, Ordering::Relaxed);
    n
}

/// Number of threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    let o = THREAD_OVERRIDE.with(|c| c.get());
    if o != 0 {
        o
    } else {
        hardware_threads()
    }
}

/// Mirror of `rayon::ThreadPoolBuilder` (only `num_threads` + `build`).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            hardware_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { n })
    }
}

/// A "pool" is just a pinned thread count: `install` scopes the count for
/// every shim primitive (transitively) invoked from `f`.
pub struct ThreadPool {
    n: usize,
}

impl ThreadPool {
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        // Restore via drop guard so a panicking closure cannot leave the
        // override pinned on this thread.
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREAD_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(self.n)));
        f()
    }

    pub fn current_num_threads(&self) -> usize {
        self.n
    }
}

// ---------------------------------------------------------------------------
// The parallel-iterator trait
// ---------------------------------------------------------------------------

/// Evenly partition `len` items into at most `n` contiguous ranges.
fn split_ranges(len: usize, n: usize) -> Vec<(usize, usize)> {
    let n = n.clamp(1, len.max(1));
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// A piece-wise splittable, sequentially drivable iterator chain.
pub trait ParallelIterator: Sized + Send {
    type Item: Send;

    /// Upper bound on the number of items (exact for indexed chains).
    fn len_hint(&self) -> usize;

    /// Exact length, when the chain is indexed (no filter/flat-map).
    fn exact_len(&self) -> Option<usize>;

    /// Split into at most `n` contiguous pieces.
    fn split_into(self, n: usize) -> Vec<Self>;

    /// Materialize this piece sequentially, in order.
    fn drive(self, out: &mut Vec<Self::Item>);

    // ---- adaptors -------------------------------------------------------

    fn map<R: Send, F: Fn(Self::Item) -> R + Sync + Send>(self, f: F) -> Map<Self, F> {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    fn filter<F: Fn(&Self::Item) -> bool + Sync + Send>(self, f: F) -> Filter<Self, F> {
        Filter {
            base: self,
            f: Arc::new(f),
        }
    }

    fn filter_map<R: Send, F: Fn(Self::Item) -> Option<R> + Sync + Send>(
        self,
        f: F,
    ) -> FilterMap<Self, F> {
        FilterMap {
            base: self,
            f: Arc::new(f),
        }
    }

    /// `flat_map` whose mapper returns a *sequential* iterator.
    fn flat_map_iter<I, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(Self::Item) -> I + Sync + Send,
    {
        FlatMapIter {
            base: self,
            f: Arc::new(f),
        }
    }

    fn enumerate(self) -> Enumerate<Self> {
        assert!(
            self.exact_len().is_some(),
            "enumerate requires an indexed chain"
        );
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        let (la, lb) = (self.exact_len(), other.exact_len());
        assert!(la.is_some() && lb.is_some(), "zip requires indexed chains");
        // Unequal sides would split at different boundaries and silently
        // mispair elements; the shim requires equal lengths up front
        // (real rayon truncates element-wise instead).
        assert_eq!(la, lb, "zip requires equal-length chains in this shim");
        Zip { a: self, b: other }
    }

    // ---- terminals ------------------------------------------------------

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F) {
        let _: Vec<()> = run_vec(self.map(f));
    }

    /// Maximum by key; ties resolve to the *last* maximal item, matching
    /// rayon (and `std::iter::Iterator::max_by_key`).
    fn max_by_key<K: Ord, F: Fn(&Self::Item) -> K + Sync + Send>(self, f: F) -> Option<Self::Item> {
        run_vec(self).into_iter().max_by_key(|it| f(it))
    }

    fn min_by_key<K: Ord, F: Fn(&Self::Item) -> K + Sync + Send>(self, f: F) -> Option<Self::Item> {
        run_vec(self).into_iter().min_by_key(|it| f(it))
    }

    fn max(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        run_vec(self).into_iter().max()
    }

    fn min(self) -> Option<Self::Item>
    where
        Self::Item: Ord,
    {
        run_vec(self).into_iter().min()
    }

    fn sum<S: std::iter::Sum<Self::Item> + Send>(self) -> S {
        run_vec(self).into_iter().sum()
    }

    fn count(self) -> usize {
        run_vec(self).len()
    }

    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        run_vec(self).into_iter().fold(identity(), op)
    }
}

/// Materialize a chain, in order, using up to `current_num_threads()`
/// scoped threads.
fn run_vec<P: ParallelIterator>(p: P) -> Vec<P::Item> {
    let threads = current_num_threads();
    if threads <= 1 || p.len_hint() < MIN_PAR {
        let mut out = Vec::new();
        p.drive(&mut out);
        return out;
    }
    let pieces = p.split_into(threads * 4);
    if pieces.len() <= 1 {
        let mut out = Vec::new();
        for piece in pieces {
            piece.drive(&mut out);
        }
        return out;
    }
    let chunks: Vec<Vec<P::Item>> = std::thread::scope(|s| {
        let handles: Vec<_> = pieces
            .into_iter()
            .map(|piece| {
                s.spawn(move || {
                    let mut v = Vec::new();
                    piece.drive(&mut v);
                    v
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let total = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for mut c in chunks {
        out.append(&mut c);
    }
    out
}

/// Collection targets for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T>>(p: P) -> Self {
        run_vec(p)
    }
}

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// `[T]::par_iter()`.
pub struct SliceParIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceParIter<'a, T> {
    type Item = &'a T;

    fn len_hint(&self) -> usize {
        self.slice.len()
    }

    fn exact_len(&self) -> Option<usize> {
        Some(self.slice.len())
    }

    fn split_into(self, n: usize) -> Vec<Self> {
        split_ranges(self.slice.len(), n)
            .into_iter()
            .map(|(a, b)| SliceParIter {
                slice: &self.slice[a..b],
            })
            .collect()
    }

    fn drive(self, out: &mut Vec<Self::Item>) {
        out.extend(self.slice.iter());
    }
}

/// `[T]::par_iter_mut()`.
pub struct SliceParIterMut<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for SliceParIterMut<'a, T> {
    type Item = &'a mut T;

    fn len_hint(&self) -> usize {
        self.slice.len()
    }

    fn exact_len(&self) -> Option<usize> {
        Some(self.slice.len())
    }

    fn split_into(self, n: usize) -> Vec<Self> {
        let mut pieces = Vec::new();
        let mut rest = self.slice;
        let len = rest.len();
        for (a, b) in split_ranges(len, n) {
            let (head, tail) = rest.split_at_mut(b - a);
            pieces.push(SliceParIterMut { slice: head });
            rest = tail;
        }
        pieces
    }

    fn drive(self, out: &mut Vec<Self::Item>) {
        out.extend(self.slice.iter_mut());
    }
}

/// `[T]::par_chunks(size)`.
pub struct SliceChunksIter<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for SliceChunksIter<'a, T> {
    type Item = &'a [T];

    fn len_hint(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn exact_len(&self) -> Option<usize> {
        Some(self.len_hint())
    }

    fn split_into(self, n: usize) -> Vec<Self> {
        let nchunks = self.len_hint();
        split_ranges(nchunks, n)
            .into_iter()
            .map(|(a, b)| SliceChunksIter {
                slice: &self.slice[a * self.size..(b * self.size).min(self.slice.len())],
                size: self.size,
            })
            .collect()
    }

    fn drive(self, out: &mut Vec<Self::Item>) {
        out.extend(self.slice.chunks(self.size));
    }
}

/// `Vec<T>::into_par_iter()`.
pub struct VecParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn len_hint(&self) -> usize {
        self.items.len()
    }

    fn exact_len(&self) -> Option<usize> {
        Some(self.items.len())
    }

    fn split_into(mut self, n: usize) -> Vec<Self> {
        let ranges = split_ranges(self.items.len(), n);
        let mut pieces: Vec<Self> = Vec::with_capacity(ranges.len());
        // Split off from the back so indices stay valid.
        for (a, _) in ranges.into_iter().rev() {
            pieces.push(VecParIter {
                items: self.items.split_off(a),
            });
        }
        pieces.reverse();
        pieces
    }

    fn drive(self, out: &mut Vec<Self::Item>) {
        out.extend(self.items);
    }
}

/// `Range<{u32, u64, usize}>::into_par_iter()`.
pub struct RangeParIter<T> {
    start: T,
    end: T,
}

macro_rules! range_par_iter {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeParIter<$t> {
            type Item = $t;

            fn len_hint(&self) -> usize {
                (self.end.saturating_sub(self.start)) as usize
            }

            fn exact_len(&self) -> Option<usize> {
                Some(self.len_hint())
            }

            fn split_into(self, n: usize) -> Vec<Self> {
                split_ranges(self.len_hint(), n)
                    .into_iter()
                    .map(|(a, b)| RangeParIter {
                        start: self.start + a as $t,
                        end: self.start + b as $t,
                    })
                    .collect()
            }

            fn drive(self, out: &mut Vec<Self::Item>) {
                out.extend(self.start..self.end);
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeParIter<$t>;

            fn into_par_iter(self) -> Self::Iter {
                RangeParIter { start: self.start, end: self.end }
            }
        }
    )*};
}
range_par_iter!(u32, u64, usize);

// ---------------------------------------------------------------------------
// Adaptors
// ---------------------------------------------------------------------------

pub struct Map<S, F> {
    base: S,
    f: Arc<F>,
}

impl<S, R, F> ParallelIterator for Map<S, F>
where
    S: ParallelIterator,
    R: Send,
    F: Fn(S::Item) -> R + Sync + Send,
{
    type Item = R;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    fn exact_len(&self) -> Option<usize> {
        self.base.exact_len()
    }

    fn split_into(self, n: usize) -> Vec<Self> {
        let f = self.f;
        self.base
            .split_into(n)
            .into_iter()
            .map(|piece| Map {
                base: piece,
                f: Arc::clone(&f),
            })
            .collect()
    }

    fn drive(self, out: &mut Vec<Self::Item>) {
        let mut tmp = Vec::new();
        self.base.drive(&mut tmp);
        out.reserve(tmp.len());
        for item in tmp {
            out.push((self.f)(item));
        }
    }
}

pub struct Filter<S, F> {
    base: S,
    f: Arc<F>,
}

impl<S, F> ParallelIterator for Filter<S, F>
where
    S: ParallelIterator,
    F: Fn(&S::Item) -> bool + Sync + Send,
{
    type Item = S::Item;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    fn exact_len(&self) -> Option<usize> {
        None
    }

    fn split_into(self, n: usize) -> Vec<Self> {
        let f = self.f;
        self.base
            .split_into(n)
            .into_iter()
            .map(|piece| Filter {
                base: piece,
                f: Arc::clone(&f),
            })
            .collect()
    }

    fn drive(self, out: &mut Vec<Self::Item>) {
        let mut tmp = Vec::new();
        self.base.drive(&mut tmp);
        out.extend(tmp.into_iter().filter(|x| (self.f)(x)));
    }
}

pub struct FilterMap<S, F> {
    base: S,
    f: Arc<F>,
}

impl<S, R, F> ParallelIterator for FilterMap<S, F>
where
    S: ParallelIterator,
    R: Send,
    F: Fn(S::Item) -> Option<R> + Sync + Send,
{
    type Item = R;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    fn exact_len(&self) -> Option<usize> {
        None
    }

    fn split_into(self, n: usize) -> Vec<Self> {
        let f = self.f;
        self.base
            .split_into(n)
            .into_iter()
            .map(|piece| FilterMap {
                base: piece,
                f: Arc::clone(&f),
            })
            .collect()
    }

    fn drive(self, out: &mut Vec<Self::Item>) {
        let mut tmp = Vec::new();
        self.base.drive(&mut tmp);
        out.extend(tmp.into_iter().filter_map(|x| (self.f)(x)));
    }
}

pub struct FlatMapIter<S, F> {
    base: S,
    f: Arc<F>,
}

impl<S, I, F> ParallelIterator for FlatMapIter<S, F>
where
    S: ParallelIterator,
    I: IntoIterator,
    I::Item: Send,
    F: Fn(S::Item) -> I + Sync + Send,
{
    type Item = I::Item;

    fn len_hint(&self) -> usize {
        // Unknown expansion; assume 2× as a splitting heuristic.
        self.base.len_hint().saturating_mul(2)
    }

    fn exact_len(&self) -> Option<usize> {
        None
    }

    fn split_into(self, n: usize) -> Vec<Self> {
        let f = self.f;
        self.base
            .split_into(n)
            .into_iter()
            .map(|piece| FlatMapIter {
                base: piece,
                f: Arc::clone(&f),
            })
            .collect()
    }

    fn drive(self, out: &mut Vec<Self::Item>) {
        let mut tmp = Vec::new();
        self.base.drive(&mut tmp);
        for item in tmp {
            out.extend((self.f)(item));
        }
    }
}

pub struct Enumerate<S> {
    base: S,
    offset: usize,
}

impl<S: ParallelIterator> ParallelIterator for Enumerate<S> {
    type Item = (usize, S::Item);

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    fn exact_len(&self) -> Option<usize> {
        self.base.exact_len()
    }

    fn split_into(self, n: usize) -> Vec<Self> {
        let mut offset = self.offset;
        self.base
            .split_into(n)
            .into_iter()
            .map(|piece| {
                let here = offset;
                offset += piece
                    .exact_len()
                    .expect("enumerate requires indexed pieces");
                Enumerate {
                    base: piece,
                    offset: here,
                }
            })
            .collect()
    }

    fn drive(self, out: &mut Vec<Self::Item>) {
        let mut tmp = Vec::new();
        self.base.drive(&mut tmp);
        out.reserve(tmp.len());
        for (i, item) in tmp.into_iter().enumerate() {
            out.push((self.offset + i, item));
        }
    }
}

pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn len_hint(&self) -> usize {
        self.a.len_hint().min(self.b.len_hint())
    }

    fn exact_len(&self) -> Option<usize> {
        match (self.a.exact_len(), self.b.exact_len()) {
            (Some(x), Some(y)) => Some(x.min(y)),
            _ => None,
        }
    }

    fn split_into(self, n: usize) -> Vec<Self> {
        // Both sides split by identical (len-determined) boundaries as
        // long as their lengths match; zip callers in this workspace
        // always zip equal-length chains.
        let pa = self.a.split_into(n);
        let pb = self.b.split_into(pa.len());
        pa.into_iter().zip(pb).map(|(a, b)| Zip { a, b }).collect()
    }

    fn drive(self, out: &mut Vec<Self::Item>) {
        let mut ta = Vec::new();
        self.a.drive(&mut ta);
        let mut tb = Vec::new();
        self.b.drive(&mut tb);
        out.extend(ta.into_iter().zip(tb));
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits (the prelude surface)
// ---------------------------------------------------------------------------

/// `into_par_iter()` on owned collections and ranges.
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;

    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;

    fn into_par_iter(self) -> Self::Iter {
        VecParIter { items: self }
    }
}

/// `par_iter()` / `par_chunks()` on slices (and, by deref, `Vec`s).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> SliceParIter<'_, T>;
    fn par_chunks(&self, size: usize) -> SliceChunksIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceParIter<'_, T> {
        SliceParIter { slice: self }
    }

    fn par_chunks(&self, size: usize) -> SliceChunksIter<'_, T> {
        assert!(size > 0, "chunk size must be positive");
        SliceChunksIter { slice: self, size }
    }
}

/// `par_iter_mut()` and the parallel sorts on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> SliceParIterMut<'_, T>;

    fn par_sort_unstable(&mut self)
    where
        T: Ord;

    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, key: F);

    fn par_sort_by<F: Fn(&T, &T) -> std::cmp::Ordering + Sync>(&mut self, cmp: F);
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceParIterMut<'_, T> {
        SliceParIterMut { slice: self }
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_sort_impl(self, &|a, b| a.cmp(b));
    }

    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, key: F) {
        par_sort_impl(self, &|a, b| key(a).cmp(&key(b)));
    }

    fn par_sort_by<F: Fn(&T, &T) -> std::cmp::Ordering + Sync>(&mut self, cmp: F) {
        par_sort_impl(self, &cmp);
    }
}

/// Chunk-sort on scoped threads, then a sequential k-way (pairwise)
/// merge. Stable, since both phases preserve the order of equal keys.
fn par_sort_impl<T: Send>(items: &mut [T], cmp: &(impl Fn(&T, &T) -> std::cmp::Ordering + Sync)) {
    let threads = current_num_threads();
    if threads <= 1 || items.len() < 4096 {
        items.sort_by(cmp);
        return;
    }
    let len = items.len();
    // Phase 1: sort contiguous chunks in parallel.
    let ranges = split_ranges(len, threads);
    {
        let mut rest: &mut [T] = items;
        std::thread::scope(|s| {
            for (a, b) in &ranges {
                let (head, tail) = rest.split_at_mut(b - a);
                rest = tail;
                s.spawn(move || head.sort_by(cmp));
            }
        });
    }
    // Phase 2: pairwise merges (sequential; merge is memory-bound).
    let mut bounds: Vec<usize> = ranges.iter().map(|&(_, b)| b).collect();
    while bounds.len() > 1 {
        let mut next = Vec::with_capacity(bounds.len().div_ceil(2));
        let mut start = 0;
        let mut i = 0;
        while i < bounds.len() {
            if i + 1 < bounds.len() {
                merge_in_place(&mut items[start..bounds[i + 1]], bounds[i] - start, cmp);
                next.push(bounds[i + 1]);
                start = bounds[i + 1];
                i += 2;
            } else {
                next.push(bounds[i]);
                i += 1;
            }
        }
        bounds = next;
    }
}

/// Merge `items[..mid]` and `items[mid..]` (each sorted) stably.
///
/// Panic safety: the buffer holds bitwise *copies* of elements whose
/// originals stay in place until the final write-back, and [`NoDrop`]
/// guarantees the copies are never dropped — so a panicking comparator
/// unwinds with every element still owned exactly once by the slice.
fn merge_in_place<T>(items: &mut [T], mid: usize, cmp: &impl Fn(&T, &T) -> std::cmp::Ordering) {
    struct NoDrop<T> {
        buf: Vec<T>,
    }
    impl<T> Drop for NoDrop<T> {
        fn drop(&mut self) {
            // SAFETY: shrinking to 0 forgets the bitwise copies
            // without dropping them; the source slice still owns the
            // originals (len 0 <= capacity always holds).
            unsafe { self.buf.set_len(0) }
        }
    }

    if mid == 0 || mid == items.len() {
        return;
    }
    let mut merged = NoDrop {
        buf: Vec::with_capacity(items.len()),
    };
    // SAFETY: `i` stays < mid and `j` < items.len(), so every
    // `ptr.add` is in bounds; each element is `ptr::read` exactly once
    // into `merged`, and `NoDrop` prevents a double drop if `cmp`
    // panics mid-merge.
    unsafe {
        let (mut i, mut j) = (0usize, mid);
        let ptr = items.as_ptr();
        while i < mid && j < items.len() {
            if cmp(&*ptr.add(j), &*ptr.add(i)) == std::cmp::Ordering::Less {
                merged.buf.push(std::ptr::read(ptr.add(j)));
                j += 1;
            } else {
                merged.buf.push(std::ptr::read(ptr.add(i)));
                i += 1;
            }
        }
        while i < mid {
            merged.buf.push(std::ptr::read(ptr.add(i)));
            i += 1;
        }
        while j < items.len() {
            merged.buf.push(std::ptr::read(ptr.add(j)));
            j += 1;
        }
        let dst = items.as_mut_ptr();
        std::ptr::copy_nonoverlapping(merged.buf.as_ptr(), dst, merged.buf.len());
        // NoDrop's Drop clears the buffer without dropping the copies.
    }
}

pub mod prelude {
    pub use super::{
        FromParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..100_000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 100_000);
        assert!(v.windows(2).all(|w| w[1] == w[0] + 2));
    }

    #[test]
    fn filter_and_flat_map() {
        let xs: Vec<u32> = (0..10_000).collect();
        let evens: Vec<u32> = xs
            .par_iter()
            .filter_map(|&x| (x % 2 == 0).then_some(x))
            .collect();
        assert_eq!(evens.len(), 5_000);
        assert!(evens.windows(2).all(|w| w[0] < w[1]));
        let doubled: Vec<u32> = xs.par_iter().flat_map_iter(|&x| [x, x]).collect();
        assert_eq!(doubled.len(), 20_000);
        assert_eq!(&doubled[..4], &[0, 0, 1, 1]);
    }

    #[test]
    fn enumerate_and_zip_line_up() {
        let a: Vec<u32> = (0..5_000).collect();
        let b: Vec<u32> = (5_000..10_000).collect();
        let pairs: Vec<(usize, (&u32, &u32))> =
            a.par_iter().zip(b.par_iter()).enumerate().collect();
        for (i, (x, y)) in &pairs {
            assert_eq!(**x as usize, *i);
            assert_eq!(**y as usize, *i + 5_000);
        }
    }

    #[test]
    fn iter_mut_reaches_every_item() {
        let mut v = vec![1u64; 10_000];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn sorts_match_sequential() {
        let mut a: Vec<u64> = (0..50_000u64)
            .map(|i| i.wrapping_mul(0x9e3779b9) % 1000)
            .collect();
        let mut b = a.clone();
        a.par_sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        let mut c: Vec<(u64, usize)> = b.iter().enumerate().map(|(i, &x)| (x, i)).collect();
        let mut d = c.clone();
        // Comparator (not key) form on purpose: this exercises the
        // `par_sort_by` entry point against std's stable sort.
        #[allow(clippy::unnecessary_sort_by)]
        {
            c.par_sort_by(|x, y| x.0.cmp(&y.0));
            d.sort_by(|x, y| x.0.cmp(&y.0));
        }
        assert_eq!(c, d, "par_sort_by must be stable");
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.install(super::current_num_threads), 3);
        assert_ne!(super::current_num_threads(), 0);
    }

    #[test]
    fn max_by_key_takes_last_tie() {
        let xs = vec![1u32, 5, 3, 5, 2];
        let m = xs
            .clone()
            .into_par_iter()
            .enumerate()
            .max_by_key(|&(_, x)| x);
        assert_eq!(m, Some((3, 5)));
    }
}

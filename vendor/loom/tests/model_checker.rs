//! Self-tests for the mini-loom checker: it must find the classic
//! concurrency bugs (lost update, missing release/acquire edge, data
//! race, deadlock) and must *not* flag their correct counterparts.

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

fn check(f: impl Fn() + Send + Sync + 'static) -> u64 {
    loom::model::Builder::default().check(f)
}

fn fails(f: impl Fn() + Send + Sync + 'static) -> String {
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(f)));
    let payload = res.expect_err("model must find a counterexample");
    payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "<non-string panic>".into())
}

#[test]
fn sequential_program_has_one_interleaving() {
    let n = check(|| {
        let a = AtomicUsize::new(0);
        a.store(7, Ordering::SeqCst);
        assert_eq!(a.load(Ordering::SeqCst), 7);
    });
    assert_eq!(n, 1);
}

#[test]
fn two_incrementing_threads_explore_multiple_schedules() {
    let n = check(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let a2 = Arc::clone(&a);
        let t = thread::spawn(move || {
            a2.fetch_add(1, Ordering::SeqCst);
        });
        a.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(a.load(Ordering::SeqCst), 2);
    });
    // The two RMWs interleave in at least two distinct orders.
    assert!(n >= 2, "explored {n}");
}

#[test]
fn finds_lost_update_with_load_then_store() {
    // The textbook non-atomic increment: load; add; store. Some
    // interleaving loses one update and the final assert fails.
    let msg = fails(|| {
        let a = Arc::new(AtomicUsize::new(0));
        let a2 = Arc::clone(&a);
        let t = thread::spawn(move || {
            let v = a2.load(Ordering::SeqCst);
            a2.store(v + 1, Ordering::SeqCst);
        });
        let v = a.load(Ordering::SeqCst);
        a.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(a.load(Ordering::SeqCst), 2, "lost update");
    });
    assert!(msg.contains("lost update"), "unexpected failure: {msg}");
}

#[test]
fn message_passing_with_release_acquire_is_clean() {
    let n = check(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            // Synchronized: the relaxed store must be visible.
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
    assert!(n >= 2, "explored {n}");
}

#[test]
fn finds_stale_read_when_publish_flag_is_relaxed() {
    // Same shape, but the flag store is Relaxed: no synchronizes-with
    // edge, so the reader may see flag == true with data still 0.
    let msg = fails(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(true, Ordering::Relaxed); // BUG: must be Release
        });
        if flag.load(Ordering::Acquire) {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale read");
        }
        t.join().unwrap();
    });
    assert!(msg.contains("stale read"), "unexpected failure: {msg}");
}

#[test]
fn finds_data_race_on_unsynchronized_cell() {
    let msg = fails(|| {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let c2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: the model serializes and race-checks this
                // access; the race is *reported*, not executed racily.
                unsafe { *p = 1 }
            });
        });
        cell.with(|p| {
            // SAFETY: as above.
            unsafe { *p }
        });
        t.join().unwrap();
    });
    assert!(msg.contains("data race"), "unexpected failure: {msg}");
}

#[test]
fn cell_guarded_by_seqcst_flag_is_race_free() {
    let n = check(|| {
        let cell = Arc::new(UnsafeCell::new(0u64));
        let ready = Arc::new(AtomicBool::new(false));
        let (c2, r2) = (Arc::clone(&cell), Arc::clone(&ready));
        let t = thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: writes before the Release store, reader only
                // reads after observing it.
                unsafe { *p = 9 }
            });
            r2.store(true, Ordering::SeqCst);
        });
        if ready.load(Ordering::SeqCst) {
            let v = cell.with(|p| {
                // SAFETY: gated on the SeqCst flag (acquire edge).
                unsafe { *p }
            });
            assert_eq!(v, 9);
        }
        t.join().unwrap();
    });
    assert!(n >= 2, "explored {n}");
}

#[test]
fn mutex_excludes_and_synchronizes() {
    check(|| {
        let m = Arc::new(Mutex::new(0u64));
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || {
            *m2.lock().unwrap() += 1;
        });
        *m.lock().unwrap() += 1;
        t.join().unwrap();
        assert_eq!(*m.lock().unwrap(), 2);
    });
}

#[test]
fn detects_deadlock() {
    let msg = fails(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().unwrap();
            let _gb = b2.lock().unwrap();
        });
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap();
        drop((_gb, _ga));
        t.join().unwrap();
    });
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}

#[test]
fn spin_wait_with_yield_terminates() {
    check(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            f2.store(true, Ordering::SeqCst);
        });
        while !flag.load(Ordering::SeqCst) {
            thread::yield_now();
        }
        t.join().unwrap();
    });
}

#[test]
fn preemption_bound_prunes_the_state_space() {
    let run = |bound| {
        let b = loom::model::Builder {
            preemption_bound: bound,
            ..Default::default()
        };
        b.check(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = Arc::clone(&a);
            let t = thread::spawn(move || {
                for _ in 0..3 {
                    a2.fetch_add(1, Ordering::SeqCst);
                }
            });
            for _ in 0..3 {
                a.fetch_add(2, Ordering::SeqCst);
            }
            t.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 9);
        })
    };
    let bounded = run(Some(1));
    let full = run(None);
    assert!(
        bounded < full,
        "bound 1 ({bounded}) must explore fewer schedules than exhaustive ({full})"
    );
}

#[test]
fn preemption_bound_still_catches_the_lost_update() {
    let b = loom::model::Builder {
        preemption_bound: Some(2),
        ..Default::default()
    };
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        b.check(|| {
            let a = Arc::new(AtomicUsize::new(0));
            let a2 = Arc::clone(&a);
            let t = thread::spawn(move || {
                let v = a2.load(Ordering::SeqCst);
                a2.store(v + 1, Ordering::SeqCst);
            });
            let v = a.load(Ordering::SeqCst);
            a.store(v + 1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2);
        })
    }));
    assert!(res.is_err(), "bound 2 must still expose the lost update");
}

//! Instrumented replacements for `std::sync` primitives. Each object
//! registers a location with the current model execution at
//! construction, so they may only be created (and used) inside a
//! [`crate::model()`] closure.

use crate::rt;

pub use std::sync::Arc;

pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::rt;

    macro_rules! atomic_int {
        ($name:ident, $ty:ty) => {
            /// Instrumented atomic; every access is a scheduling point
            /// and non-`SeqCst` loads may observe any coherent store.
            #[derive(Debug)]
            pub struct $name {
                loc: usize,
            }

            impl $name {
                #[allow(clippy::new_without_default)]
                pub fn new(v: $ty) -> Self {
                    Self {
                        loc: rt::register_loc(v as u64),
                    }
                }

                /// Consume the atomic and return its final value.
                /// Mirrors `std`'s `into_inner`: the caller owns the
                /// atomic, so this is the last access — modeled as a
                /// `SeqCst` load of the location.
                pub fn into_inner(self) -> $ty {
                    rt::atomic_load(self.loc, Ordering::SeqCst) as $ty
                }

                pub fn load(&self, ordering: Ordering) -> $ty {
                    rt::atomic_load(self.loc, ordering) as $ty
                }

                pub fn store(&self, val: $ty, ordering: Ordering) {
                    rt::atomic_store(self.loc, val as u64, ordering)
                }

                pub fn swap(&self, val: $ty, ordering: Ordering) -> $ty {
                    rt::atomic_rmw(self.loc, ordering, |_| val as u64) as $ty
                }

                pub fn fetch_add(&self, val: $ty, ordering: Ordering) -> $ty {
                    rt::atomic_rmw(self.loc, ordering, |old| {
                        (old as $ty).wrapping_add(val) as u64
                    }) as $ty
                }

                pub fn fetch_sub(&self, val: $ty, ordering: Ordering) -> $ty {
                    rt::atomic_rmw(self.loc, ordering, |old| {
                        (old as $ty).wrapping_sub(val) as u64
                    }) as $ty
                }

                pub fn fetch_or(&self, val: $ty, ordering: Ordering) -> $ty {
                    rt::atomic_rmw(self.loc, ordering, |old| ((old as $ty) | val) as u64) as $ty
                }

                pub fn fetch_and(&self, val: $ty, ordering: Ordering) -> $ty {
                    rt::atomic_rmw(self.loc, ordering, |old| ((old as $ty) & val) as u64) as $ty
                }

                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    rt::atomic_cas(self.loc, current as u64, new as u64, success, failure)
                        .map(|v| v as $ty)
                        .map_err(|v| v as $ty)
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    // The model never fails spuriously.
                    self.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    atomic_int!(AtomicUsize, usize);
    atomic_int!(AtomicU64, u64);
    atomic_int!(AtomicU32, u32);

    /// Instrumented `AtomicBool` (stored as 0/1 in a modeled location).
    #[derive(Debug)]
    pub struct AtomicBool {
        loc: usize,
    }

    impl AtomicBool {
        #[allow(clippy::new_without_default)]
        pub fn new(v: bool) -> Self {
            Self {
                loc: rt::register_loc(v as u64),
            }
        }

        pub fn load(&self, ordering: Ordering) -> bool {
            rt::atomic_load(self.loc, ordering) != 0
        }

        pub fn store(&self, val: bool, ordering: Ordering) {
            rt::atomic_store(self.loc, val as u64, ordering)
        }

        pub fn swap(&self, val: bool, ordering: Ordering) -> bool {
            rt::atomic_rmw(self.loc, ordering, |_| val as u64) != 0
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            rt::atomic_cas(self.loc, current as u64, new as u64, success, failure)
                .map(|v| v != 0)
                .map_err(|v| v != 0)
        }
    }
}

/// Instrumented mutex. Locking is a blocking scheduling point; the
/// unlock→lock edge carries release/acquire synchronization.
#[derive(Debug)]
pub struct Mutex<T> {
    id: usize,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: the model runtime enforces mutual exclusion (a thread only
// receives a guard while `locked_by` is itself), so the inner data is
// never aliased mutably; `T: Send` makes cross-thread handoff sound.
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above — `&Mutex<T>` only yields `&mut T` under the lock.
unsafe impl<T: Send> Sync for Mutex<T> {}

pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(data: T) -> Self {
        Mutex {
            id: rt::register_mutex(),
            data: std::cell::UnsafeCell::new(data),
        }
    }

    /// Lock, blocking (in model time) until available. Mirrors
    /// `std::sync::Mutex::lock`'s `LockResult` signature; the model
    /// never poisons.
    #[allow(clippy::result_unit_err)]
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, ()> {
        rt::mutex_lock(self.id);
        Ok(MutexGuard { lock: self })
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the runtime granted this thread the lock; no other
        // thread can access `data` until unlock.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive lock held, see `Deref`.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        rt::mutex_unlock(self.lock.id);
    }
}

//! Instrumented [`UnsafeCell`] with dynamic data-race detection: every
//! access is checked against the vector clocks of all prior accesses,
//! and an unsynchronized read/write pair fails the model with a
//! counterexample schedule. The real data access runs strictly inside
//! the scheduling point, so model executions never physically race.

use crate::rt;

/// Model stand-in for `std::cell::UnsafeCell` exposing loom's
/// closure-based access API (`with` / `with_mut`).
#[derive(Debug)]
pub struct UnsafeCell<T> {
    cell: std::cell::UnsafeCell<T>,
    id: usize,
}

// SAFETY: the runtime's race detector fails any execution in which two
// accesses are unsynchronized, and accesses are serialized within
// scheduling points, so cross-thread sharing is observable and checked
// rather than undefined.
unsafe impl<T: Send> Send for UnsafeCell<T> {}
// SAFETY: as above — all access goes through the checked with/with_mut.
unsafe impl<T: Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    pub fn new(data: T) -> Self {
        UnsafeCell {
            cell: std::cell::UnsafeCell::new(data),
            id: rt::register_cell(),
        }
    }

    /// Immutable access. Fails the model if a write to this cell does
    /// not happen-before this read.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        rt::cell_read_enter(self.id);
        let out = f(self.cell.get());
        rt::exit_op();
        out
    }

    /// Mutable access. Fails the model if any prior access does not
    /// happen-before this write.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        rt::cell_write_enter(self.id);
        let out = f(self.cell.get());
        rt::exit_op();
        out
    }
}

//! Offline mini-loom: an exhaustive (bounded) interleaving model
//! checker for the subset of the loom API this workspace uses.
//!
//! The build environment has no crates.io access, so — like the
//! `rayon`/`proptest` shims next door — this crate re-implements the
//! surface the workspace needs: [`model()`] / [`model::Builder`],
//! instrumented atomics and [`sync::Mutex`], a race-detecting
//! [`cell::UnsafeCell`], and [`thread::spawn`]/`join`/`yield_now`.
//! The (private) `rt` module holds the execution and memory model; the
//! short version:
//!
//! * every synchronization operation is a scheduling point, and a DFS
//!   explorer enumerates every schedule up to an optional preemption
//!   bound (CHESS-style);
//! * non-`SeqCst` atomic loads branch over every coherent store
//!   (vector-clock visibility), so missing release/acquire edges
//!   produce real stale-read counterexamples;
//! * `UnsafeCell` accesses are checked for happens-before data races —
//!   the failure mode a broken publish protocol actually has.
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use loom::sync::Arc;
//!
//! let explored = loom::model::Builder::default().check(|| {
//!     let a = Arc::new(AtomicUsize::new(0));
//!     let a2 = Arc::clone(&a);
//!     let t = loom::thread::spawn(move || a2.fetch_add(1, Ordering::SeqCst));
//!     a.fetch_add(1, Ordering::SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(a.load(Ordering::SeqCst), 2);
//! });
//! assert!(explored >= 2);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cell;
mod rt;
pub mod sync;
pub mod thread;

pub mod model {
    use std::sync::Arc;

    /// Exploration configuration. The defaults match what the
    /// workspace's model tests need; `preemption_bound: None` explores
    /// the full interleaving space.
    #[derive(Debug, Clone)]
    pub struct Builder {
        /// Maximum involuntary context switches per execution
        /// (`None` = unbounded, i.e. exhaustive).
        pub preemption_bound: Option<usize>,
        /// Per-execution scheduling-step limit (livelock guard).
        pub max_steps: u64,
        /// Total-execution limit; exceeding it panics rather than
        /// spinning forever on an unexpectedly large state space.
        pub max_iterations: u64,
    }

    impl Default for Builder {
        fn default() -> Self {
            Builder {
                preemption_bound: None,
                max_steps: 50_000,
                max_iterations: 5_000_000,
            }
        }
    }

    impl Builder {
        /// Explore every schedule of `f` under this configuration.
        /// Panics with a counterexample schedule on assertion failure,
        /// data race, deadlock, or livelock; otherwise returns the
        /// number of interleavings explored.
        pub fn check<F: Fn() + Send + Sync + 'static>(&self, f: F) -> u64 {
            crate::rt::explore(
                Arc::new(f),
                self.preemption_bound,
                self.max_steps,
                self.max_iterations,
            )
        }
    }
}

/// Exhaustively model-check `f` with the default [`model::Builder`]
/// and log the explored-interleaving count to stderr.
pub fn model<F: Fn() + Send + Sync + 'static>(f: F) -> u64 {
    let n = model::Builder::default().check(f);
    eprintln!("loom-mini: explored {n} interleavings");
    n
}

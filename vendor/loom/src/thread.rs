//! Instrumented threads: spawn/join are scheduling points with the
//! expected happens-before edges, and `yield_now` deprioritizes the
//! caller so spin loops stay finite under exploration.

use crate::rt;
use std::sync::{Arc, Mutex};

pub struct JoinHandle<T> {
    tid: rt::Tid,
    result: Arc<Mutex<Option<T>>>,
}

/// Spawn a model thread. The child inherits the parent's causal
/// history (spawn edge); [`JoinHandle::join`] adds the join edge.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let tid = rt::spawn_thread(move || {
        let out = f();
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
    });
    JoinHandle { tid, result }
}

impl<T> JoinHandle<T> {
    /// Wait (in model time) for the thread to finish and take its
    /// result. A panicking child fails the whole model run, so this
    /// only ever returns `Ok` — the `Result` mirrors std's signature.
    pub fn join(self) -> std::thread::Result<T> {
        rt::join_thread(self.tid);
        let out = self
            .result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("joined model thread must have stored its result");
        Ok(out)
    }

    pub fn is_finished(&self) -> bool {
        rt::thread_is_finished(self.tid)
    }
}

/// Voluntarily deschedule: the caller is not run again until every
/// other runnable thread has had a chance to step (or none remain).
pub fn yield_now() {
    rt::yield_now();
}

//! The model-checking runtime: a cooperative scheduler over real OS
//! threads, a DFS explorer that systematically enumerates every
//! scheduling (and weak-memory read) choice, and a vector-clock memory
//! model that detects data races on instrumented [`crate::cell::UnsafeCell`]s
//! and lets non-SeqCst atomic loads observe stale-but-legal values.
//!
//! # Execution model
//!
//! Exactly one model thread is *active* at a time; every instrumented
//! operation (atomic access, cell access, mutex op, spawn/join/yield)
//! is a scheduling point. The explorer records each point where more
//! than one thread could run next (or a weak load could read more than
//! one store) as a [`Choice`], and after every complete execution
//! backtracks depth-first to the last unexhausted choice. The run is
//! over when the whole choice tree is exhausted.
//!
//! # Memory model (simplified C11)
//!
//! Per atomic location we keep the full modification order (the list of
//! stores in execution order), each stamped with its writer's vector
//! clock. A load may read any store not yet superseded for this thread:
//! the candidate floor is the newest store that happens-before the
//! loading thread (write-read coherence) or that the thread has already
//! read (read-read coherence). `SeqCst` loads are strengthened to read
//! the newest store (exact for programs whose accesses to a location
//! are all `SeqCst`; conservative otherwise); `Acquire`/`Relaxed` loads
//! *branch* over every legal candidate. Acquire loads of a release
//! store join clocks (synchronizes-with). RMWs always read the newest
//! store (C11 atomicity). Release sequences and fences are not
//! modeled — document protocols accordingly.
//!
//! # Bounds
//!
//! [`crate::model::Builder::preemption_bound`] caps the number of
//! *involuntary* context switches per execution (switching away from a
//! runnable, non-yielding thread), the classic CHESS-style bound that
//! keeps exploration tractable while catching most protocol bugs at
//! bound 2–3. `yield_now` deprioritizes the yielding thread until every
//! other runnable thread has had a chance to step, so spin-wait loops
//! terminate under exploration instead of unrolling forever.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

pub(crate) type Tid = usize;

/// Panic payload used to unwind model threads when the execution is
/// being torn down (failure elsewhere, or exploration aborted).
pub(crate) struct Abort;

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    fn grow(&mut self, tid: Tid) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
    }

    pub(crate) fn tick(&mut self, tid: Tid) {
        self.grow(tid);
        self.0[tid] += 1;
    }

    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (s, o) in self.0.iter_mut().zip(&other.0) {
            *s = (*s).max(*o);
        }
    }

    /// `self ≤ other` pointwise (missing entries are zero).
    pub(crate) fn leq(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &c)| c <= other.0.get(i).copied().unwrap_or(0))
    }

    fn set(&mut self, tid: Tid, v: u64) {
        self.grow(tid);
        self.0[tid] = v;
    }

    fn get(&self, tid: Tid) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Choice {
    index: usize,
    num: usize,
}

#[derive(Debug, Default)]
pub(crate) struct Explorer {
    path: Vec<Choice>,
    pos: usize,
    pub(crate) iterations: u64,
}

impl Explorer {
    /// Pick an alternative in `0..num`, replaying the recorded prefix
    /// and extending it (first alternative) past the frontier.
    pub(crate) fn choose(&mut self, num: usize) -> Result<usize, String> {
        debug_assert!(num >= 1);
        if num == 1 {
            // Forced moves are not recorded: they can never backtrack
            // and would only bloat the path.
            return Ok(0);
        }
        if self.pos < self.path.len() {
            let c = &self.path[self.pos];
            if c.num != num {
                return Err(format!(
                    "schedule divergence on replay at choice {} (recorded {} alternatives, now {}): \
                     the model closure must be deterministic",
                    self.pos, c.num, num
                ));
            }
            self.pos += 1;
            Ok(self.path[self.pos - 1].index)
        } else {
            self.path.push(Choice { index: 0, num });
            self.pos += 1;
            Ok(0)
        }
    }

    /// Advance to the next unexplored schedule; `false` when the tree
    /// is exhausted.
    fn backtrack(&mut self) -> bool {
        while let Some(last) = self.path.last_mut() {
            if last.index + 1 < last.num {
                last.index += 1;
                self.pos = 0;
                return true;
            }
            self.path.pop();
        }
        false
    }

    fn describe(&self) -> String {
        let picks: Vec<String> = self.path[..self.pos.min(self.path.len())]
            .iter()
            .map(|c| format!("{}/{}", c.index, c.num))
            .collect();
        format!("[{}]", picks.join(" "))
    }
}

// ---------------------------------------------------------------------------
// Per-execution state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum Blocked {
    No,
    OnMutex(usize),
    OnJoin(Tid),
}

struct ThreadState {
    finished: bool,
    blocked: Blocked,
    yielded: bool,
    clock: VClock,
}

struct StoreEvt {
    val: u64,
    clock: VClock,
    release: bool,
}

struct LocState {
    stores: Vec<StoreEvt>,
    /// Per-thread read-coherence floor: index of the newest store this
    /// thread has read (it may never again read anything older).
    last_read: Vec<usize>,
}

struct CellState {
    write_clock: VClock,
    /// `read_clock[t]` = `t`'s own clock component at its last read.
    read_clock: VClock,
}

struct MutexState {
    locked_by: Option<Tid>,
    /// Release clock of the last unlock (or creation).
    clock: VClock,
}

pub(crate) struct Sched {
    threads: Vec<ThreadState>,
    active: Tid,
    locs: Vec<LocState>,
    cells: Vec<CellState>,
    mutexes: Vec<MutexState>,
    preemptions: usize,
    steps: u64,
    failure: Option<String>,
    live_real_threads: usize,
}

impl Sched {
    fn new() -> Self {
        Sched {
            threads: vec![ThreadState {
                finished: false,
                blocked: Blocked::No,
                yielded: false,
                clock: {
                    let mut c = VClock::default();
                    c.tick(0);
                    c
                },
            }],
            active: 0,
            locs: Vec::new(),
            cells: Vec::new(),
            mutexes: Vec::new(),
            preemptions: 0,
            steps: 0,
            failure: None,
            live_real_threads: 0,
        }
    }

    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.finished)
    }
}

// ---------------------------------------------------------------------------
// The runtime handle
// ---------------------------------------------------------------------------

pub(crate) struct Rt {
    sched: Mutex<Sched>,
    cv: Condvar,
    explorer: Mutex<Explorer>,
    preemption_bound: Option<usize>,
    max_steps: u64,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Rt>, Tid)>> = const { RefCell::new(None) };
}

pub(crate) fn current() -> (Arc<Rt>, Tid) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("loom model types may only be used inside loom::model")
    })
}

fn set_current(rt: Arc<Rt>, tid: Tid) {
    CURRENT.with(|c| *c.borrow_mut() = Some((rt, tid)));
}

impl Rt {
    fn lock(&self) -> MutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_explorer(&self) -> MutexGuard<'_, Explorer> {
        self.explorer.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until this thread is the active one; unwind if the
    /// execution failed meanwhile.
    fn wait_turn(&self, me: Tid) {
        let mut s = self.lock();
        while s.failure.is_none() && s.active != me {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        if s.failure.is_some() {
            drop(s);
            resume_unwind(Box::new(Abort));
        }
    }

    fn fail(&self, s: &mut Sched, msg: String) -> ! {
        let trace = self.lock_explorer().describe();
        if s.failure.is_none() {
            s.failure = Some(format!("{msg}\n  schedule: {trace}"));
        }
        self.cv.notify_all();
        resume_unwind(Box::new(Abort));
    }

    /// Pick which thread performs the next operation. Returns an error
    /// message on deadlock.
    fn schedule_next(&self, s: &mut Sched, ex: &mut Explorer, me: Tid) -> Result<(), String> {
        let runnable: Vec<Tid> = (0..s.threads.len())
            .filter(|&t| !s.threads[t].finished && s.threads[t].blocked == Blocked::No)
            .collect();
        if runnable.is_empty() {
            if s.all_finished() {
                return Ok(()); // execution complete
            }
            let stuck: Vec<String> = (0..s.threads.len())
                .filter(|&t| !s.threads[t].finished)
                .map(|t| format!("thread {t} {:?}", s.threads[t].blocked))
                .collect();
            return Err(format!(
                "deadlock: no runnable thread ({})",
                stuck.join(", ")
            ));
        }
        // Deprioritize voluntarily yielded threads so spin loops make
        // progress; once only yielded threads remain, clear the flags.
        let mut cands: Vec<Tid> = runnable
            .iter()
            .copied()
            .filter(|&t| !s.threads[t].yielded)
            .collect();
        if cands.is_empty() {
            for &t in &runnable {
                s.threads[t].yielded = false;
            }
            cands = runnable;
        }
        let me_contends = cands.contains(&me);
        // Preemption bound: once spent, a runnable current thread must
        // keep running (switching away from blocked/finished/yielding
        // threads stays free).
        if me_contends {
            // Order the current thread first so the DFS's first path is
            // the mostly-sequential one.
            cands.sort_by_key(|&t| (t != me, t));
            if self.preemption_bound.is_some_and(|b| s.preemptions >= b) {
                cands.truncate(1);
            }
        }
        let idx = ex.choose(cands.len())?;
        let next = cands[idx];
        if me_contends && next != me {
            s.preemptions += 1;
        }
        s.threads[next].yielded = false;
        s.active = next;
        Ok(())
    }
}

/// True while this thread is unwinding out of a *failed* execution —
/// destructors running during the abort (mutex guards, read guards)
/// still call into the runtime, and those calls must become no-ops
/// instead of blocking or double-panicking.
pub(crate) fn in_teardown() -> bool {
    if !std::thread::panicking() {
        return false;
    }
    let (rt, _) = current();
    let failed = rt.lock().failure.is_some();
    failed
}

/// First half of an instrumented operation: wait for our turn and
/// apply `f` to the shared state. The calling thread stays *active*
/// (no other model thread runs) until it calls [`exit_op`] — which is
/// what lets `UnsafeCell` shims perform the real data access strictly
/// inside the scheduling point.
pub(crate) fn enter_op<R>(
    f: impl FnOnce(&Rt, &mut Sched, &mut Explorer, Tid) -> Result<R, String>,
) -> R {
    let (rt, me) = current();
    rt.wait_turn(me);
    let mut s = rt.lock();
    let mut ex = rt.lock_explorer();
    s.steps += 1;
    if s.steps > rt.max_steps {
        let msg = format!(
            "livelock: execution exceeded {} scheduling steps",
            rt.max_steps
        );
        drop(ex);
        rt.fail(&mut s, msg);
    }
    match f(&rt, &mut s, &mut ex, me) {
        Ok(v) => v,
        Err(msg) => {
            drop(ex);
            rt.fail(&mut s, msg);
        }
    }
}

/// Second half of an instrumented operation: hand the schedule to the
/// explorer's next pick and wake whoever it chose.
pub(crate) fn exit_op() {
    if in_teardown() {
        return;
    }
    let (rt, me) = current();
    let mut s = rt.lock();
    let mut ex = rt.lock_explorer();
    if let Err(msg) = rt.schedule_next(&mut s, &mut ex, me) {
        drop(ex);
        rt.fail(&mut s, msg);
    }
    drop(ex);
    drop(s);
    rt.cv.notify_all();
}

/// Run one complete instrumented operation (effect + handoff).
pub(crate) fn op<R>(f: impl FnOnce(&Rt, &mut Sched, &mut Explorer, Tid) -> Result<R, String>) -> R {
    let out = enter_op(f);
    exit_op();
    out
}

// ---------------------------------------------------------------------------
// Operations used by the sync / thread shims
// ---------------------------------------------------------------------------

fn acquires(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releases(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

pub(crate) fn register_loc(initial: u64) -> usize {
    let (rt, me) = current();
    let mut s = rt.lock();
    let clock = s.threads[me].clock.clone();
    s.locs.push(LocState {
        stores: vec![StoreEvt {
            val: initial,
            clock,
            release: true,
        }],
        last_read: Vec::new(),
    });
    s.locs.len() - 1
}

fn read_floor(l: &LocState, clock: &VClock, tid: Tid) -> usize {
    let mut floor = l.last_read.get(tid).copied().unwrap_or(0);
    for (i, st) in l.stores.iter().enumerate().skip(floor) {
        if st.clock.leq(clock) {
            floor = i;
        }
    }
    floor
}

pub(crate) fn atomic_load(loc: usize, ordering: Ordering) -> u64 {
    if in_teardown() {
        return 0;
    }
    op(|_rt, s, ex, me| {
        s.threads[me].clock.tick(me);
        let clock = s.threads[me].clock.clone();
        let l = &mut s.locs[loc];
        let newest = l.stores.len() - 1;
        let chosen = if ordering == Ordering::SeqCst {
            // Strengthened: SeqCst loads read the newest store. Exact
            // for all-SeqCst locations under interleaving exploration.
            newest
        } else {
            let floor = read_floor(l, &clock, me);
            // Branch over every coherent candidate, newest first.
            floor + ex.choose(newest - floor + 1)?
        };
        if l.last_read.len() <= me {
            l.last_read.resize(me + 1, 0);
        }
        l.last_read[me] = l.last_read[me].max(chosen);
        let (val, sync) = {
            let st = &l.stores[chosen];
            (
                st.val,
                (acquires(ordering) && st.release).then(|| st.clock.clone()),
            )
        };
        if let Some(c) = sync {
            s.threads[me].clock.join(&c);
        }
        Ok(val)
    })
}

pub(crate) fn atomic_store(loc: usize, val: u64, ordering: Ordering) {
    if in_teardown() {
        return;
    }
    op(|_rt, s, _ex, me| {
        s.threads[me].clock.tick(me);
        let clock = s.threads[me].clock.clone();
        let l = &mut s.locs[loc];
        l.stores.push(StoreEvt {
            val,
            clock,
            release: releases(ordering),
        });
        if l.last_read.len() <= me {
            l.last_read.resize(me + 1, 0);
        }
        // A thread never reads behind its own store.
        l.last_read[me] = l.stores.len() - 1;
        Ok(())
    })
}

/// Read-modify-write: always reads the newest store (C11 atomicity).
pub(crate) fn atomic_rmw(loc: usize, ordering: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
    if in_teardown() {
        return 0;
    }
    op(|_rt, s, _ex, me| {
        s.threads[me].clock.tick(me);
        let sync = {
            let l = &s.locs[loc];
            let st = l.stores.last().expect("location always has a store");
            (acquires(ordering) && st.release).then(|| st.clock.clone())
        };
        if let Some(c) = sync {
            s.threads[me].clock.join(&c);
        }
        let clock = s.threads[me].clock.clone();
        let l = &mut s.locs[loc];
        let old = l.stores.last().expect("location always has a store").val;
        l.stores.push(StoreEvt {
            val: f(old),
            clock,
            release: releases(ordering),
        });
        if l.last_read.len() <= me {
            l.last_read.resize(me + 1, 0);
        }
        l.last_read[me] = l.stores.len() - 1;
        Ok(old)
    })
}

pub(crate) fn atomic_cas(
    loc: usize,
    expected: u64,
    new: u64,
    success: Ordering,
    failure: Ordering,
) -> Result<u64, u64> {
    if in_teardown() {
        return Ok(0);
    }
    let mut out = Ok(0);
    op(|_rt, s, _ex, me| {
        s.threads[me].clock.tick(me);
        let (old, release) = {
            let l = &s.locs[loc];
            let st = l.stores.last().expect("location always has a store");
            (st.val, st.release)
        };
        let ord = if old == expected { success } else { failure };
        let sync = (acquires(ord) && release).then(|| {
            s.locs[loc]
                .stores
                .last()
                .expect("location always has a store")
                .clock
                .clone()
        });
        if let Some(c) = sync {
            s.threads[me].clock.join(&c);
        }
        if old == expected {
            let clock = s.threads[me].clock.clone();
            let l = &mut s.locs[loc];
            l.stores.push(StoreEvt {
                val: new,
                clock,
                release: releases(success),
            });
            if l.last_read.len() <= me {
                l.last_read.resize(me + 1, 0);
            }
            l.last_read[me] = l.stores.len() - 1;
            out = Ok(old);
        } else {
            let l = &mut s.locs[loc];
            if l.last_read.len() <= me {
                l.last_read.resize(me + 1, 0);
            }
            l.last_read[me] = l.stores.len() - 1;
            out = Err(old);
        }
        Ok(())
    });
    out
}

pub(crate) fn register_cell() -> usize {
    let (rt, me) = current();
    let mut s = rt.lock();
    let clock = s.threads[me].clock.clone();
    s.cells.push(CellState {
        write_clock: clock,
        read_clock: VClock::default(),
    });
    s.cells.len() - 1
}

/// Race-check + begin an immutable cell access. The caller must pair
/// this with [`exit_op`] *after* the real data read, so the access
/// cannot overlap another thread's.
pub(crate) fn cell_read_enter(cell: usize) {
    if in_teardown() {
        return;
    }
    enter_op(|_rt, s, _ex, me| {
        s.threads[me].clock.tick(me);
        let clock = s.threads[me].clock.clone();
        let c = &mut s.cells[cell];
        if !c.write_clock.leq(&clock) {
            return Err(format!(
                "data race: unsynchronized read of an UnsafeCell (cell {cell}, thread {me}); \
                 the last write does not happen-before this read"
            ));
        }
        let own = clock.get(me);
        c.read_clock.set(me, own);
        Ok(())
    })
}

/// Race-check + begin a mutable cell access; pair with [`exit_op`]
/// after the real data write.
pub(crate) fn cell_write_enter(cell: usize) {
    if in_teardown() {
        return;
    }
    enter_op(|_rt, s, _ex, me| {
        s.threads[me].clock.tick(me);
        let clock = s.threads[me].clock.clone();
        let c = &mut s.cells[cell];
        if !c.write_clock.leq(&clock) {
            return Err(format!(
                "data race: unsynchronized write of an UnsafeCell (cell {cell}, thread {me}); \
                 a concurrent write does not happen-before it"
            ));
        }
        if !c.read_clock.leq(&clock) {
            return Err(format!(
                "data race: write of an UnsafeCell concurrent with a read (cell {cell}, thread {me})"
            ));
        }
        c.write_clock = clock;
        Ok(())
    })
}

pub(crate) fn register_mutex() -> usize {
    let (rt, me) = current();
    let mut s = rt.lock();
    let clock = s.threads[me].clock.clone();
    s.mutexes.push(MutexState {
        locked_by: None,
        clock,
    });
    s.mutexes.len() - 1
}

pub(crate) fn mutex_lock(id: usize) {
    if in_teardown() {
        return;
    }
    loop {
        let acquired = op(|_rt, s, _ex, me| {
            if s.mutexes[id].locked_by.is_none() {
                s.threads[me].clock.tick(me);
                let mclock = s.mutexes[id].clock.clone();
                s.threads[me].clock.join(&mclock);
                s.mutexes[id].locked_by = Some(me);
                Ok(true)
            } else {
                s.threads[me].blocked = Blocked::OnMutex(id);
                Ok(false)
            }
        });
        if acquired {
            return;
        }
        // We were parked; the next op() blocks until the unlocker
        // marks us runnable and the scheduler picks us, then we retry.
    }
}

pub(crate) fn mutex_unlock(id: usize) {
    if in_teardown() {
        return;
    }
    op(|_rt, s, _ex, me| {
        debug_assert_eq!(s.mutexes[id].locked_by, Some(me));
        s.threads[me].clock.tick(me);
        s.mutexes[id].clock = s.threads[me].clock.clone();
        s.mutexes[id].locked_by = None;
        for t in s.threads.iter_mut() {
            if t.blocked == Blocked::OnMutex(id) {
                t.blocked = Blocked::No;
            }
        }
        Ok(())
    })
}

pub(crate) fn yield_now() {
    if in_teardown() {
        return;
    }
    op(|_rt, s, _ex, me| {
        s.threads[me].yielded = true;
        Ok(())
    })
}

/// Register a child thread and spawn its backing OS thread.
pub(crate) fn spawn_thread(body: impl FnOnce() + Send + 'static) -> Tid {
    let (rt, _me) = current();
    let child = op(|_rt, s, _ex, me| {
        s.threads[me].clock.tick(me);
        let mut clock = s.threads[me].clock.clone();
        let child = s.threads.len();
        clock.tick(child);
        s.threads.push(ThreadState {
            finished: false,
            blocked: Blocked::No,
            yielded: false,
            clock,
        });
        s.live_real_threads += 1;
        Ok(child)
    });
    let rt2 = Arc::clone(&rt);
    let handle = std::thread::Builder::new()
        .name(format!("loom-model-{child}"))
        .spawn(move || run_model_thread(rt2, child, body))
        .expect("spawn model thread");
    rt.handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(handle);
    child
}

/// Blocks until `tid` has finished, establishing the join HB edge.
pub(crate) fn join_thread(tid: Tid) {
    if in_teardown() {
        return;
    }
    loop {
        let done = op(|_rt, s, _ex, me| {
            if s.threads[tid].finished {
                s.threads[me].clock.tick(me);
                let child_clock = s.threads[tid].clock.clone();
                s.threads[me].clock.join(&child_clock);
                Ok(true)
            } else {
                s.threads[me].blocked = Blocked::OnJoin(tid);
                Ok(false)
            }
        });
        if done {
            return;
        }
    }
}

/// Whether `tid` has finished (no blocking, no HB edge) — used by the
/// model JoinHandle's `is_finished`.
pub(crate) fn thread_is_finished(tid: Tid) -> bool {
    if in_teardown() {
        return true;
    }
    op(|_rt, s, _ex, _me| Ok(s.threads[tid].finished))
}

// ---------------------------------------------------------------------------
// Model thread bodies and the exploration driver
// ---------------------------------------------------------------------------

fn run_model_thread(rt: Arc<Rt>, tid: Tid, body: impl FnOnce()) {
    set_current(Arc::clone(&rt), tid);
    let result = catch_unwind(AssertUnwindSafe(|| {
        rt.wait_turn(tid);
        body();
        // Finishing is itself a scheduling point: mark done, wake
        // joiners, pass the baton.
        op(|_rt, s, _ex, me| {
            s.threads[me].finished = true;
            for t in s.threads.iter_mut() {
                if t.blocked == Blocked::OnJoin(me) {
                    t.blocked = Blocked::No;
                }
            }
            Ok(())
        });
    }));
    let mut s = rt.lock();
    if let Err(payload) = result {
        if !payload.is::<Abort>() && s.failure.is_none() {
            let msg = if let Some(m) = payload.downcast_ref::<&str>() {
                (*m).to_string()
            } else if let Some(m) = payload.downcast_ref::<String>() {
                m.clone()
            } else {
                "<non-string panic>".to_string()
            };
            let trace = rt.lock_explorer().describe();
            s.failure = Some(format!(
                "model thread {tid} panicked: {msg}\n  schedule: {trace}"
            ));
        }
        s.threads[tid].finished = true;
    }
    s.live_real_threads -= 1;
    drop(s);
    rt.cv.notify_all();
}

/// Run one complete execution of `f` under the schedule recorded in
/// `explorer`; returns the failure message, if any.
fn run_one(
    f: Arc<dyn Fn() + Send + Sync>,
    explorer: Explorer,
    rt_cfg: (Option<usize>, u64),
) -> (Explorer, Option<String>) {
    let rt = Arc::new(Rt {
        sched: Mutex::new(Sched::new()),
        cv: Condvar::new(),
        explorer: Mutex::new(explorer),
        preemption_bound: rt_cfg.0,
        max_steps: rt_cfg.1,
        handles: Mutex::new(Vec::new()),
    });
    {
        let mut s = rt.lock();
        s.live_real_threads = 1;
    }
    let rt0 = Arc::clone(&rt);
    let main = std::thread::Builder::new()
        .name("loom-model-0".into())
        .spawn(move || run_model_thread(rt0, 0, move || f()))
        .expect("spawn model main thread");
    // Wait for every real thread (main + spawned) to exit; on failure
    // the notify in `fail` unwinds the parked ones.
    {
        let mut s = rt.lock();
        while s.live_real_threads > 0 {
            s = rt.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }
    main.join().expect("model main thread must not die unwound");
    for h in rt
        .handles
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .drain(..)
    {
        h.join().expect("model thread must not die unwound");
    }
    let mut s = rt.lock();
    let failure = if s.failure.is_none() && !s.all_finished() {
        // Threads leaked past the closure without being joined — every
        // model thread must be joined (or finish) for the state space
        // to be well-defined.
        Some("model closure returned with unfinished, unjoined threads".into())
    } else {
        s.failure.take()
    };
    let explorer = std::mem::take(&mut *rt.lock_explorer());
    (explorer, failure)
}

/// Exploration driver used by [`crate::model::Builder::check`].
pub(crate) fn explore(
    f: Arc<dyn Fn() + Send + Sync>,
    preemption_bound: Option<usize>,
    max_steps: u64,
    max_iterations: u64,
) -> u64 {
    let mut explorer = Explorer::default();
    loop {
        explorer.iterations += 1;
        explorer.pos = 0;
        let iterations = explorer.iterations;
        let (ex, failure) = run_one(Arc::clone(&f), explorer, (preemption_bound, max_steps));
        explorer = ex;
        if let Some(msg) = failure {
            panic!(
                "loom-mini: counterexample after {} interleaving(s):\n{}",
                iterations, msg
            );
        }
        if iterations >= max_iterations {
            panic!(
                "loom-mini: exceeded max_iterations ({max_iterations}) without exhausting the \
                 state space; raise the limit or tighten the preemption bound"
            );
        }
        if !explorer.backtrack() {
            return iterations;
        }
    }
}

//! Offline shim for the subset of `criterion` used by this workspace.
//!
//! The build environment has no access to crates.io, so this crate
//! provides a small wall-clock benchmark harness with criterion's API
//! shape: `Criterion::benchmark_group`, `bench_function` /
//! `bench_with_input`, `Bencher::iter` / `iter_batched`, `Throughput`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs `sample_size` samples
//! (after one warm-up) and reports min / median / mean per-iteration
//! times to stdout. There is no statistical regression machinery; the
//! numbers are honest medians of wall-clock samples.
//!
//! Filters: `cargo bench -- <substring>` runs only benchmark ids
//! containing the substring, like real criterion.

#![deny(unsafe_op_in_unsafe_fn)]

use std::hint;
use std::time::{Duration, Instant};

/// Re-export with criterion's name: an identity function the optimizer
/// cannot see through.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How batched setup output is sized; the shim treats all variants alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Items or bytes processed per iteration, for ops/sec style reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        Self {
            function: Some(function.to_string()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// One measured sample set, reported by the harness.
#[derive(Debug, Clone)]
pub struct SampleReport {
    pub id: String,
    pub samples: Vec<Duration>,
    pub throughput: Option<Throughput>,
}

impl SampleReport {
    pub fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort_unstable();
        s[s.len() / 2]
    }

    fn mean(&self) -> Duration {
        self.samples.iter().sum::<Duration>() / self.samples.len().max(1) as u32
    }

    fn print(&self) {
        let med = self.median();
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if med.as_nanos() > 0 => {
                format!("  ({:.3} Melem/s)", n as f64 / med.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if med.as_nanos() > 0 => {
                format!(
                    "  ({:.3} MiB/s)",
                    n as f64 / med.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "{:<48} min {:>12?}  median {:>12?}  mean {:>12?}{rate}",
            self.id,
            min,
            med,
            self.mean()
        );
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Time `routine` directly, once per sample (plus one warm-up).
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine()); // warm-up
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Time `routine` on fresh input from `setup`; setup time excluded.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup())); // warm-up
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    /// Like `iter_batched`, with a mutable reference handed to `routine`.
    pub fn iter_batched_ref<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> R,
        _size: BatchSize,
    ) {
        let mut warm = setup();
        black_box(routine(&mut warm));
        for _ in 0..self.sample_size {
            let mut input = setup();
            let t = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(t.elapsed());
        }
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    filter: Option<String>,
    pub reports: Vec<SampleReport>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(5),
            filter,
            reports: Vec::new(),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }

    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher<'_>)) {
        let mut g = BenchmarkGroup {
            parent: self,
            name: String::new(),
            throughput: None,
            sample_size: None,
        };
        g.bench_function(id, f);
    }

    fn run_one(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        sample_size: usize,
        mut f: impl FnMut(&mut Bencher<'_>),
    ) {
        if let Some(filt) = &self.filter {
            if !id.contains(filt.as_str()) {
                return;
            }
        }
        let mut samples = Vec::with_capacity(sample_size);
        let mut b = Bencher {
            samples: &mut samples,
            sample_size,
        };
        f(&mut b);
        let report = SampleReport {
            id,
            samples,
            throughput,
        };
        report.print();
        self.reports.push(report);
    }
}

/// Mirror of criterion's benchmark group.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    fn full_id(&self, id: impl std::fmt::Display) -> String {
        if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        }
    }

    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher<'_>)) {
        let full = self.full_id(id);
        let (t, n) = (
            self.throughput,
            self.sample_size.unwrap_or(self.parent.sample_size),
        );
        self.parent.run_one(full, t, n, f);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher<'_>, &I),
    ) {
        let full = self.full_id(id);
        let (t, n) = (
            self.throughput,
            self.sample_size.unwrap_or(self.parent.sample_size),
        );
        self.parent.run_one(full, t, n, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// `criterion_group!` — both the struct-config and plain forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// `criterion_main!` — generates `fn main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        c.filter = None;
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("f", 1), &5u64, |b, &x| {
            b.iter(|| (0..x).sum::<u64>())
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
        assert_eq!(c.reports.len(), 2);
        assert_eq!(c.reports[0].id, "g/f/1");
        assert_eq!(c.reports[0].samples.len(), 3);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion::default().sample_size(2);
        c.filter = Some("nope".into());
        let mut g = c.benchmark_group("g");
        g.bench_function("skipped", |b| b.iter(|| 1 + 1));
        g.finish();
        assert!(c.reports.is_empty());
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}

//! Counting-allocator assertions for the zero-alloc delta path.
//!
//! The unified API's contract: once the caller-owned [`DeltaBuf`] and
//! the delta-tracking baselines have warmed up, the steady-state delta
//! path — membership bookkeeping plus `take_delta_into` — performs no
//! heap allocations at all, and the buffer-reporting batch loop
//! allocates strictly less than the legacy materializing loop.
//!
//! All assertions live in ONE test function and diff the *per-thread*
//! allocation counter: the process-global counter picks up stray
//! allocations from the libtest harness thread (it runs concurrently
//! with the test even at `--test-threads=1`), which made the `== 0`
//! assertions sporadically fail with off-by-one-or-two counts.

use batch_spanners::par::alloc_counter::{thread_allocations as allocs, CountingAlloc};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn delta_path_is_allocation_free_after_warmup() {
    use batch_spanners::core::SpannerSet;
    use batch_spanners::gen;
    use batch_spanners::prelude::*;
    use batch_spanners::sparsify::WeightedSet;

    // --- 1. SpannerSet: the unweighted delta path, exactly zero. ---
    // Steady state = bounded churn over a resident core. (Removing the
    // *entire* set every round is a shrink workload: the edge table's
    // amortized anti-tombstone rebuild fires, which allocates — that is
    // table maintenance, not the delta path.)
    let edges = gen::gnm(64, 256, 9);
    let (core, churn) = edges.split_at(192);
    let mut set = SpannerSet::new();
    let mut buf = DeltaBuf::new();
    for &e in core {
        set.add(e);
    }
    // Warm-up: two churn/extract cycles size the count table, the
    // baseline table, and the buffer.
    for _ in 0..2 {
        for &e in churn {
            set.add(e);
        }
        set.take_delta_into(&mut buf);
        for &e in churn {
            set.remove(e);
        }
        set.take_delta_into(&mut buf);
    }
    let before = allocs();
    for _ in 0..10 {
        for &e in churn {
            set.add(e);
        }
        set.take_delta_into(&mut buf);
        assert_eq!(buf.recourse(), churn.len());
        for &e in churn {
            set.remove(e);
        }
        set.take_delta_into(&mut buf);
        assert_eq!(buf.recourse(), churn.len());
    }
    assert_eq!(
        allocs() - before,
        0,
        "SpannerSet delta path allocated after warm-up"
    );

    // --- 2. WeightedSet: the weighted delta path, exactly zero. ---
    let mut wset = WeightedSet::new();
    for &e in core {
        wset.insert(e, 1.0);
    }
    for _ in 0..2 {
        for &e in churn {
            wset.insert(e, 4.0);
        }
        wset.take_delta_into(&mut buf);
        for &e in churn {
            wset.remove(e);
        }
        wset.take_delta_into(&mut buf);
    }
    let before = allocs();
    for _ in 0..10 {
        for &e in churn {
            wset.insert(e, 4.0);
        }
        wset.take_delta_into(&mut buf);
        for &e in churn {
            wset.remove(e);
        }
        wset.take_delta_into(&mut buf);
    }
    assert_eq!(
        allocs() - before,
        0,
        "WeightedSet delta path allocated after warm-up"
    );

    // --- 3. End-to-end: the buffer-reporting batch loop allocates
    //        strictly less than the legacy materializing loop on an
    //        identical schedule (twin structures, same seeds). ---
    use bds_graph::stream::UpdateStream;
    let n = 200;
    let init = gen::gnm_connected(n, 800, 5);
    let mut a = FullyDynamicSpanner::builder(n)
        .stretch(2)
        .seed(77)
        .build(&init)
        .unwrap();
    let mut b = FullyDynamicSpanner::builder(n)
        .stretch(2)
        .seed(77)
        .build(&init)
        .unwrap();
    let mut stream_a = UpdateStream::new(n, &init, 31);
    let mut stream_b = UpdateStream::new(n, &init, 31);
    // Warm-up both.
    for _ in 0..5 {
        let batch = stream_a.next_batch(20, 20);
        a.apply_into(&batch, &mut buf);
        let batch = stream_b.next_batch(20, 20);
        let _ = b.process_batch(&batch);
    }
    let rounds = 30;
    let before = allocs();
    let mut recourse_buffered = 0usize;
    for _ in 0..rounds {
        let batch = stream_a.next_batch(20, 20);
        a.apply_into(&batch, &mut buf);
        recourse_buffered += buf.recourse();
    }
    let buffered = allocs() - before;
    let before = allocs();
    let mut recourse_legacy = 0usize;
    for _ in 0..rounds {
        let batch = stream_b.next_batch(20, 20);
        recourse_legacy += b.process_batch(&batch).recourse();
    }
    let legacy = allocs() - before;
    assert_eq!(recourse_buffered, recourse_legacy, "twin runs diverged");
    assert!(
        buffered < legacy,
        "buffer path must allocate strictly less: {buffered} vs {legacy}"
    );

    // --- 4. ShardedEngine: the merged delta path — scatter into
    //        per-shard sub-batches, per-shard apply, merge_from + net
    //        into the caller's buffer — is exactly zero once warm.
    //        MirrorSpanner shards keep the per-shard apply itself
    //        allocation-free, so the assertion isolates the dispatcher;
    //        one pinned thread keeps the fan-out on this thread (scoped
    //        worker spawns are scheduling, not the delta path).
    bds_par::run_with_threads(1, || {
        let n = 96;
        let init = gen::gnm(n, 384, 17);
        let (core, churn) = init.split_at(256);
        let mut engine = ShardedEngineBuilder::new(n)
            .shards(4)
            .build_with(core, move |_, shard_edges| {
                MirrorSpanner::build(n, shard_edges)
            })
            .unwrap();
        let mut buf = DeltaBuf::new();
        let ins = UpdateBatch::insert_only(churn.to_vec());
        let del = UpdateBatch::delete_only(churn.to_vec());
        for _ in 0..2 {
            engine.apply_into(&ins, &mut buf);
            engine.apply_into(&del, &mut buf);
        }
        let before = allocs();
        for _ in 0..10 {
            engine.apply_into(&ins, &mut buf);
            assert_eq!(buf.recourse(), churn.len());
            engine.apply_into(&del, &mut buf);
            assert_eq!(buf.recourse(), churn.len());
        }
        assert_eq!(
            allocs() - before,
            0,
            "sharded merged-delta path allocated after warm-up"
        );
    });

    // --- 5. Replicated ShardedEngine: the steady-state lane × replica
    //        fan-out (every write applied to every live replica, engine
    //        live-edge tracking, sequence stamping, primary-delta merge)
    //        is also exactly zero once warm — replication multiplies the
    //        work, not the allocations. One replica is dropped so the
    //        dead-replica skip path is exercised too.
    bds_par::run_with_threads(1, || {
        let n = 96;
        let init = gen::gnm(n, 384, 19);
        let (core, churn) = init.split_at(256);
        let mut engine = ShardedEngineBuilder::new(n)
            .shards(2)
            .replicas(3)
            .partitioner(JumpPartitioner::new())
            .build_with(core, move |_, shard_edges| {
                MirrorSpanner::build(n, shard_edges)
            })
            .unwrap();
        engine.drop_replica(0, 2).unwrap();
        let mut buf = DeltaBuf::new();
        let ins = UpdateBatch::insert_only(churn.to_vec());
        let del = UpdateBatch::delete_only(churn.to_vec());
        for _ in 0..2 {
            engine.apply_into(&ins, &mut buf);
            engine.apply_into(&del, &mut buf);
        }
        let before = allocs();
        for _ in 0..10 {
            engine.apply_into(&ins, &mut buf);
            assert_eq!(buf.recourse(), churn.len());
            engine.apply_into(&del, &mut buf);
            assert_eq!(buf.recourse(), churn.len());
        }
        assert_eq!(
            allocs() - before,
            0,
            "replicated sharded fan-out allocated after warm-up"
        );
    });
}

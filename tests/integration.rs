//! Cross-crate integration tests: every theorem structure driven by the
//! same adversarial update schedule, with cross-validation between
//! structures and against static oracles.

use batch_spanners::gen;
use batch_spanners::prelude::*;
use bds_dstruct::FxHashSet;
use bds_graph::csr::edge_stretch;
use bds_graph::cuts::sparsifier_error;
use bds_graph::stream::UpdateStream;

/// All spanner variants track the same mutating graph; each keeps its own
/// guarantee and its deltas replay exactly.
#[test]
fn all_spanners_track_one_graph() {
    let n = 120;
    let init = gen::gnm_connected(n, 500, 42);
    let mut stream = UpdateStream::new(n, &init, 43);

    let mut base = FullyDynamicSpanner::new(n, 2, &init, 1);
    let mut sparse = SparseSpanner::new(n, &init, 2);
    let mut ultra = UltraSparseSpanner::new(n, &init, UltraParams { x: 2 }, 3);

    let mut base_shadow: FxHashSet<Edge> = base.spanner_edges().into_iter().collect();
    let mut sparse_shadow: FxHashSet<Edge> = sparse.spanner_edges().into_iter().collect();
    let mut ultra_shadow: FxHashSet<Edge> = ultra.spanner_edges().into_iter().collect();

    for round in 0..15 {
        let batch = stream.next_batch(8, 8);
        base.process_batch(&batch).apply_to(&mut base_shadow);
        sparse
            .delete_batch(&batch.deletions)
            .apply_to(&mut sparse_shadow);
        sparse
            .insert_batch(&batch.insertions)
            .apply_to(&mut sparse_shadow);
        ultra.process(&batch).apply_to(&mut ultra_shadow);

        let live = stream.live_edges();
        for (name, shadow, edges) in [
            ("base", &base_shadow, base.spanner_edges()),
            ("sparse", &sparse_shadow, sparse.spanner_edges()),
            ("ultra", &ultra_shadow, ultra.spanner_edges()),
        ] {
            let got: FxHashSet<Edge> = edges.into_iter().collect();
            assert_eq!(
                &got, shadow,
                "{name} delta replay diverged in round {round}"
            );
            // Every spanner is a subgraph of the live graph.
            let live_set: FxHashSet<Edge> = live.iter().copied().collect();
            assert!(got.is_subset(&live_set), "{name} contains dead edges");
        }
        let st = edge_stretch(n, live, &base.spanner_edges(), n, 5);
        assert!(st <= 3.0, "base stretch {st} in round {round}");
    }
}

/// The sparsifier built on bundles approximates cuts of the same graph
/// the bundle spanner certifies connectivity for.
#[test]
fn bundle_and_sparsifier_consistency() {
    let n = 100;
    let init = gen::gnm_connected(n, 800, 7);
    let mut bundle = BundleSpanner::new(n, &init, 2, 9);
    let mut sp = DecrementalSparsifier::new(n, &init, 2, 11);
    let mut stream = UpdateStream::new(n, &init, 13);
    for _ in 0..10 {
        let dels = stream.next_deletions(25);
        bundle.delete_batch(&dels);
        sp.delete_batch(&dels);
        assert_eq!(bundle.num_live_edges(), sp.num_live_edges());
    }
    let live = stream.live_edges().to_vec();
    let err = sparsifier_error(n, &live, &sp.sparsifier_edges(), 25, 17);
    assert!(err < 1.5, "sparsifier error {err} after deletions");
    // The bundle spans every residual edge.
    let st = edge_stretch(n, &bundle.residual_edges(), &bundle.bundle_edges(), n, 19);
    assert!(st.is_finite(), "bundle lost the spanner property");
}

/// Decremental-only structures agree with the fully-dynamic wrapper when
/// the schedule happens to be deletion-only.
#[test]
fn decremental_matches_fully_dynamic_on_deletions() {
    let n = 80;
    let init = gen::gnm_connected(n, 320, 21);
    let mut full = FullyDynamicSpanner::new(n, 3, &init, 23);
    let mut decr = DecrementalSpanner::new(n, 3, &init, 25);
    let mut stream = UpdateStream::new(n, &init, 27);
    for _ in 0..12 {
        let dels = stream.next_deletions(12);
        full.delete_batch(&dels);
        decr.delete_batch(&dels);
        assert_eq!(full.num_live_edges(), decr.num_live_edges());
        let live = stream.live_edges();
        for s in [full.spanner_edges(), decr.spanner_edges()] {
            let st = edge_stretch(n, live, &s, n, 29);
            assert!(st <= 5.0, "stretch {st}");
        }
    }
    full.validate();
    decr.validate();
}

/// Stress: interleaved growth and shrinkage across two orders of
/// magnitude of edge count, validating the Bentley–Saxe bookkeeping.
#[test]
fn grow_shrink_stress() {
    let n = 60;
    let mut s = FullyDynamicSpanner::new(n, 2, &[], 31);
    let all = gen::gnm(n, 900, 33);
    // Grow in uneven chunks.
    let mut inserted = 0;
    for chunk in all.chunks(123) {
        s.insert_batch(chunk);
        inserted += chunk.len();
        assert_eq!(s.num_live_edges(), inserted);
    }
    s.validate();
    // Shrink to one third.
    for chunk in all[..600].chunks(77) {
        s.delete_batch(chunk);
    }
    s.validate();
    assert_eq!(s.num_live_edges(), all.len() - 600);
    // Regrow the deleted edges.
    s.insert_batch(&all[..300]);
    s.validate();
    let st = {
        let mut live: Vec<Edge> = all[600..].to_vec();
        live.extend_from_slice(&all[..300]);
        edge_stretch(n, &live, &s.spanner_edges(), n, 35)
    };
    assert!(st <= 3.0, "stretch {st} after grow/shrink");
}

/// Lemma 6.4's monotonicity quantity: the number of *distinct* edges that
/// ever appear in the spanner over an entire decremental run is bounded
/// (O(n log³ n) in the paper; we check a generous concrete bound). The
/// per-level J lists of Theorem 1.5 turn this into true set-monotonicity,
/// tested in `bds-bundle`.
#[test]
fn monotone_ever_in_spanner_is_bounded() {
    let n = 70;
    let init = gen::gnm_connected(n, 350, 41);
    let copies = 6;
    let mut mono = MonotoneSpanner::with_params(n, &init, copies, 0.3, 43);
    let mut ever: FxHashSet<Edge> = mono.spanner_edges().into_iter().collect();
    let mut stream = UpdateStream::new(n, &init, 47);
    for _ in 0..40 {
        let dels = stream.next_deletions(8);
        let delta = mono.delete_batch(&dels);
        ever.extend(delta.inserted);
    }
    let logn = (n as f64).log2();
    let bound = copies as f64 * 4.0 * n as f64 * logn;
    assert!(
        (ever.len() as f64) < bound,
        "distinct spanner edges {} exceeds bound {bound}",
        ever.len()
    );
}

//! Property-based tests (proptest) over random update scripts: the
//! workspace-level invariants that must hold for *every* schedule, not
//! just the seeded ones.

use batch_spanners::gen;
use batch_spanners::prelude::*;
use bds_dstruct::{DynamicForest, EdgeTable, FxHashMap, FxHashSet, PriorityList};
use bds_graph::csr::edge_stretch;
use bds_graph::UnionFind;
use proptest::prelude::*;

/// Random small graph + deletion order.
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<Edge>, u64)> {
    (20usize..50, 2usize..6, any::<u64>()).prop_map(|(n, d, seed)| {
        let edges = gen::gnm(n, d * n, seed);
        (n, edges, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The decremental (2k−1)-spanner keeps its stretch under any
    /// deletion schedule and its deltas replay exactly.
    #[test]
    fn decremental_spanner_invariants((n, edges, seed) in graph_strategy(), k in 2u32..4) {
        let mut s = DecrementalSpanner::new(n, k, &edges, seed ^ 0xabc);
        let mut shadow: FxHashSet<Edge> = s.spanner_edges().into_iter().collect();
        let mut live = edges;
        let mut cursor = 0usize;
        while live.len() > 10 {
            let b = 1 + (seed as usize + cursor) % 7;
            cursor += 1;
            let batch: Vec<Edge> = live.split_off(live.len().saturating_sub(b));
            let delta = s.delete_batch(&batch);
            delta.apply_to(&mut shadow);
            let st = edge_stretch(n, &live, &s.spanner_edges(), 20, seed);
            prop_assert!(st <= (2 * k - 1) as f64, "stretch {} exceeded {}", st, 2 * k - 1);
        }
        s.validate();
    }

    /// The HDT dynamic forest always reports a spanning forest of the
    /// live graph (acyclic + same connectivity).
    #[test]
    fn dynamic_forest_is_spanning((n, edges, _seed) in graph_strategy()) {
        let mut f = DynamicForest::new(n);
        let mut live: Vec<Edge> = Vec::new();
        for (i, e) in edges.iter().enumerate() {
            if i % 3 == 2 && !live.is_empty() {
                let gone = live.swap_remove(i % live.len());
                f.delete_edge(gone.u, gone.v);
            }
            if !live.contains(e) {
                f.insert_edge(e.u, e.v);
                live.push(*e);
            }
        }
        // forest edges are acyclic and realize the live connectivity.
        let mut uf_f = UnionFind::new(n);
        for (a, b) in f.forest_edges() {
            prop_assert!(uf_f.union(a, b), "cycle in forest");
        }
        let mut uf_g = UnionFind::new(n);
        for e in &live {
            uf_g.union(e.u, e.v);
        }
        for a in 0..n as V {
            for b in (a + 1)..n as V {
                prop_assert_eq!(uf_f.same(a, b), uf_g.same(a, b));
            }
        }
    }

    /// PriorityList behaves like a sorted-descending association list
    /// under randomized insert / remove / update_priority interleavings,
    /// and its rank and scan queries (`bound_rank`, `next_with`) agree
    /// with the BTreeMap oracle after every operation — the full
    /// Lemma 3.1 interface driven against a model, exercising the flat
    /// representation's tombstone/compaction/resurrection paths.
    #[test]
    fn priority_list_model(
        ops in prop::collection::vec(
            (0u64..200, any::<u16>(), 0u64..200, 0usize..40),
            1..150,
        ),
    ) {
        use std::cmp::Reverse;
        let mut pl: PriorityList<u16> = PriorityList::new();
        let mut model: std::collections::BTreeMap<Reverse<u64>, u16> = Default::default();
        for (p, v, q, from_rank) in ops {
            if let Some(want) = model.remove(&Reverse(p)) {
                prop_assert_eq!(pl.remove(p), Some(want));
            } else {
                pl.insert(p, v);
                model.insert(Reverse(p), v);
            }
            // UpdatePriority p -> q whenever p is live and q is free.
            if p != q && model.contains_key(&Reverse(p)) && !model.contains_key(&Reverse(q)) {
                let val = model.remove(&Reverse(p)).unwrap();
                model.insert(Reverse(q), val);
                prop_assert!(pl.update_priority(p, q));
            }
            prop_assert_eq!(pl.len(), model.len());
            // bound_rank(q) = number of live priorities strictly above q.
            let above = model.keys().filter(|Reverse(k)| *k > q).count();
            prop_assert_eq!(pl.bound_rank(q), above, "bound_rank({})", q);
            // next_with from an arbitrary rank against the oracle scan.
            let mut work = 0u64;
            let got = pl
                .next_with(from_rank, |_, &val| val % 3 == 0, &mut work)
                .map(|(r, pr, &val)| (r, pr, val));
            let want = model
                .iter()
                .enumerate()
                .skip(from_rank)
                .find(|(_, (_, &val))| val % 3 == 0)
                .map(|(r, (&Reverse(pr), &val))| (r, pr, val));
            prop_assert_eq!(got, want, "next_with from {}", from_rank);
        }
        for (rank, (std::cmp::Reverse(p), v)) in model.iter().enumerate() {
            prop_assert_eq!(pl.kth(rank), Some((*p, v)));
            prop_assert_eq!(pl.rank_of(*p), Some(rank));
            prop_assert_eq!(pl.find(*p), Some((rank, v)));
        }
        let entries: Vec<(u64, u16)> = pl.entries().into_iter().map(|(p, v)| (p, *v)).collect();
        let want: Vec<(u64, u16)> = model.iter().map(|(&std::cmp::Reverse(p), &v)| (p, v)).collect();
        prop_assert_eq!(entries, want);
    }

    /// `from_sorted_entries` (the batch-build path) and incremental
    /// inserts produce observationally identical lists: same entries,
    /// same scan results, same scan work.
    #[test]
    fn priority_list_builds_agree(
        raw in prop::collection::vec(0u64..10_000, 1..200),
        from in 0usize..64,
    ) {
        let prios: std::collections::BTreeSet<u64> = raw.into_iter().collect();
        let entries: Vec<(u64, u32)> = prios
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, i as u32))
            .collect();
        let mut desc = entries.clone();
        desc.sort_unstable_by_key(|&(p, _)| std::cmp::Reverse(p));
        let bulk: PriorityList<u32> = PriorityList::from_sorted_entries(desc.iter().copied());
        let mut inc: PriorityList<u32> = PriorityList::new();
        for &(p, v) in &entries {
            inc.insert(p, v);
        }
        prop_assert_eq!(bulk.entries(), inc.entries());
        let (mut wa, mut wb) = (0u64, 0u64);
        let a = bulk.next_with(from, |_, &v| v % 7 == 0, &mut wa).map(|(r, p, &v)| (r, p, v));
        let b = inc.next_with(from, |_, &v| v % 7 == 0, &mut wb).map(|(r, p, &v)| (r, p, v));
        prop_assert_eq!(a, b);
        prop_assert_eq!(wa, wb);
        if let Some(&p) = prios.iter().next() {
            prop_assert_eq!(bulk.bound_rank(p), inc.bound_rank(p));
        }
    }

    /// `EdgeTable` agrees with a tuple-keyed `FxHashMap<(V, V), u64>`
    /// model under random interleaved insert / remove / get batches.
    #[test]
    fn edge_table_matches_hashmap_model(
        batches in prop::collection::vec(
            prop::collection::vec((0u32..50, 0u32..50, any::<u64>()), 1..40),
            1..16,
        ),
    ) {
        let mut table = EdgeTable::new();
        let mut model: FxHashMap<(V, V), u64> = FxHashMap::default();
        for batch in batches {
            // Split the batch: keys already present become a remove
            // batch, fresh keys an insert batch (first occurrence wins
            // within the batch — both structures need distinct keys).
            let mut seen: FxHashSet<(V, V)> = FxHashSet::default();
            let mut ins: Vec<(V, V, u64)> = Vec::new();
            let mut del: Vec<(V, V)> = Vec::new();
            for (u, v, val) in batch {
                if !seen.insert((u, v)) {
                    continue;
                }
                if model.remove(&(u, v)).is_some() {
                    del.push((u, v));
                } else {
                    model.insert((u, v), val);
                    ins.push((u, v, val));
                }
            }
            prop_assert_eq!(table.remove_batch(&del), del.len());
            prop_assert_eq!(table.insert_batch(&ins), ins.len());
            prop_assert_eq!(table.len(), model.len());
            let queries: Vec<(V, V)> = seen.iter().copied().collect();
            let got = table.get_batch(&queries);
            for (q, g) in queries.iter().zip(got) {
                prop_assert_eq!(g, model.get(q).copied(), "query {:?}", q);
            }
        }
        let mut got: Vec<(V, V, u64)> = table.iter().collect();
        let mut want: Vec<(V, V, u64)> =
            model.into_iter().map(|((u, v), val)| (u, v, val)).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// Regression: `EsTree` distance labels match an independent
    /// sequential BFS oracle after randomized deletion batches.
    #[test]
    fn estree_distances_match_bfs_oracle((n, edges, seed) in graph_strategy()) {
        use batch_spanners::estree::UNREACHED;
        let l = 10u32;
        let directed: Vec<(V, V, u64)> = edges
            .iter()
            .flat_map(|e| {
                [
                    (e.u, e.v, ((e.u as u64) << 32) | e.u as u64),
                    (e.v, e.u, ((e.v as u64) << 32) | e.v as u64),
                ]
            })
            .collect();
        let mut t = EsTree::new(n, 0, l, &directed);
        let mut live = edges;
        let mut cursor = 0usize;
        while live.len() > 8 {
            let b = 1 + (seed as usize + cursor) % 9;
            cursor += 1;
            let batch: Vec<Edge> = live.split_off(live.len().saturating_sub(b));
            let dirs: Vec<(V, V)> =
                batch.iter().flat_map(|e| [(e.u, e.v), (e.v, e.u)]).collect();
            t.delete_batch(&dirs);
            // Independent oracle: plain queue BFS over the live edges.
            let mut adj: Vec<Vec<V>> = vec![Vec::new(); n];
            for e in &live {
                adj[e.u as usize].push(e.v);
                adj[e.v as usize].push(e.u);
            }
            let mut want = vec![UNREACHED; n];
            want[0] = 0;
            let mut queue = std::collections::VecDeque::from([0 as V]);
            while let Some(u) = queue.pop_front() {
                if want[u as usize] >= l {
                    continue;
                }
                for &w in &adj[u as usize] {
                    if want[w as usize] == UNREACHED {
                        want[w as usize] = want[u as usize] + 1;
                        queue.push_back(w);
                    }
                }
            }
            for v in 0..n as V {
                prop_assert_eq!(t.dist(v), want[v as usize], "vertex {}", v);
            }
        }
    }

    /// `UpdateBatch::from_pairs` + `normalized()` — the typed-input
    /// contract: self-loops and duplicates drop with an exact report,
    /// the output lists are sorted/deduped/canonical, and an edge in
    /// both lists is rejected with `BatchError::EdgeInBothLists` iff the
    /// canonicalized lists intersect.
    #[test]
    fn update_batch_normalization_contract(
        ins in prop::collection::vec((0u32..30, 0u32..30), 0..40),
        del in prop::collection::vec((0u32..30, 0u32..30), 0..40),
    ) {
        let (batch, report) = UpdateBatch::from_pairs(&ins, &del);
        // Report accounting is exact.
        let loops = ins.iter().chain(&del).filter(|(a, b)| a == b).count();
        prop_assert_eq!(report.self_loops_dropped, loops);
        prop_assert_eq!(
            batch.insertions.len() + report.duplicate_insertions_dropped,
            ins.iter().filter(|(a, b)| a != b).count()
        );
        prop_assert_eq!(
            batch.deletions.len() + report.duplicate_deletions_dropped,
            del.iter().filter(|(a, b)| a != b).count()
        );
        // Output lists are sorted, deduped, canonical; every surviving
        // edge came from the input.
        for lane in [&batch.insertions, &batch.deletions] {
            for w in lane.windows(2) {
                prop_assert!(w[0] < w[1], "not sorted-dedup: {:?}", w);
            }
            for e in lane {
                prop_assert!(e.u < e.v, "non-canonical {:?}", e);
            }
        }
        for (e, raw) in [(&batch.insertions, &ins), (&batch.deletions, &del)] {
            for edge in e {
                prop_assert!(
                    raw.iter().any(|&(a, b)| Edge::try_new(a, b) == Some(*edge)),
                    "edge {:?} not in input",
                    edge
                );
            }
        }
        // normalized(): rejects iff the lists share an edge; otherwise
        // idempotent on already-normal batches.
        let shared = batch.insertions.iter().any(|e| batch.deletions.contains(e));
        match batch.normalized() {
            Err(BatchError::EdgeInBothLists(e)) => {
                prop_assert!(shared);
                prop_assert!(batch.insertions.contains(&e) && batch.deletions.contains(&e));
            }
            Ok((norm, rep)) => {
                prop_assert!(!shared);
                prop_assert_eq!(rep.total_dropped(), 0, "from_pairs output is already normal");
                prop_assert_eq!(norm.insertions, batch.insertions);
                prop_assert_eq!(norm.deletions, batch.deletions);
            }
        }
    }

    /// Shard-vs-monolith equivalence: `ShardedEngine<FullyDynamicSpanner>`
    /// at N ∈ {1, 2, 7} shards and a single unsharded instance driven
    /// through *identical* random batch schedules materialize identical
    /// edge sets via the `apply_weighted_to` oracle. Stretch 1 makes the
    /// maintained output a deterministic function of the live graph (a
    /// 1-spanner is the graph itself), so the union of shard outputs
    /// must equal the monolith's output exactly — any routing, merge, or
    /// netting bug in the dispatcher shows up as a divergence.
    #[test]
    fn sharded_engine_matches_monolith((n, edges, seed) in graph_strategy()) {
        use bds_graph::stream::UpdateStream;
        for shards in [1usize, 2, 7] {
            let mut mono = FullyDynamicSpanner::builder(n)
                .stretch(1)
                .seed(seed ^ 0x51ed)
                .build(&edges)
                .unwrap();
            let mut sharded = ShardedEngineBuilder::new(n)
                .shards(shards)
                .build_with(&edges, move |i, shard_edges| {
                    FullyDynamicSpanner::builder(n)
                        .stretch(1)
                        .seed(seed ^ 0xca11 ^ i as u64)
                        .build(shard_edges)
                })
                .unwrap();
            let mut buf = DeltaBuf::new();
            let mut shadow_mono: FxHashMap<Edge, u64> = Default::default();
            mono.output_into(&mut buf);
            buf.apply_weighted_to(&mut shadow_mono);
            let mut shadow_sharded: FxHashMap<Edge, u64> = Default::default();
            sharded.output_into(&mut buf);
            buf.apply_weighted_to(&mut shadow_sharded);
            prop_assert_eq!(&shadow_mono, &shadow_sharded, "initial outputs diverge");

            // Identical schedules: twin streams with one seed.
            let mut stream_m = UpdateStream::new(n, &edges, seed ^ 0xbeef);
            let mut stream_s = UpdateStream::new(n, &edges, seed ^ 0xbeef);
            for round in 0..8 {
                let bm = stream_m.next_batch(6, 5);
                let bs = stream_s.next_batch(6, 5);
                prop_assert_eq!(&bm.insertions, &bs.insertions);
                prop_assert_eq!(&bm.deletions, &bs.deletions);
                mono.apply_into(&bm, &mut buf);
                buf.apply_weighted_to(&mut shadow_mono);
                sharded.apply_into(&bs, &mut buf);
                buf.apply_weighted_to(&mut shadow_sharded);
                prop_assert_eq!(
                    &shadow_mono,
                    &shadow_sharded,
                    "round {}: sharded[{}] output diverged from monolith",
                    round,
                    shards
                );
                prop_assert_eq!(
                    BatchDynamic::num_live_edges(&sharded),
                    mono.num_live_edges(),
                    "round {}: live-edge counts diverge",
                    round
                );
            }
        }
    }

    /// Elastic equivalence: a sharded engine driven through a random
    /// schedule with `reshard` transitions (k ∈ {1, 2, 3, 7}), a
    /// rebalance attempt, and a replica drop / restore interleaved
    /// mid-schedule materializes the same edge set as the monolith
    /// oracle after every round (stretch 1 makes the output a
    /// deterministic function of the live graph, so replicas and
    /// resharded lanes must agree exactly). The read mirror is rebuilt
    /// after every layout change — exactly what the sequence / layout
    /// discipline enforces — and must track the oracle too.
    #[test]
    fn elastic_sharded_engine_matches_monolith((n, edges, seed) in graph_strategy()) {
        use bds_graph::stream::UpdateStream;
        let mut mono = FullyDynamicSpanner::builder(n)
            .stretch(1)
            .seed(seed ^ 0x51ed)
            .build(&edges)
            .unwrap();
        let mut sharded = ShardedEngineBuilder::new(n)
            .shards(2)
            .replicas(2)
            .partitioner(JumpPartitioner::new())
            .build_with(&edges, move |i, shard_edges| {
                FullyDynamicSpanner::builder(n)
                    .stretch(1)
                    .seed(0xca11 ^ i as u64)
                    .build(shard_edges)
            })
            .unwrap();
        let mut buf = DeltaBuf::new();
        let mut shadow_mono: FxHashMap<Edge, u64> = Default::default();
        mono.output_into(&mut buf);
        buf.apply_weighted_to(&mut shadow_mono);
        let mut view = ShardedView::of(&sharded);
        let mut view_layout = sharded.layout_epoch();

        let mut stream_m = UpdateStream::new(n, &edges, seed ^ 0xe1a5);
        let mut stream_s = UpdateStream::new(n, &edges, seed ^ 0xe1a5);
        for round in 0..10 {
            // Layout / replica events between batches, seed-steered.
            match round {
                2 => {
                    let stats = sharded.reshard(3).unwrap();
                    prop_assert!(stats.moved_edges <= stats.total_edges);
                }
                4 => {
                    // Drop lane 0's primary: reads fail over to its twin.
                    sharded.drop_replica(0, 0).unwrap();
                    prop_assert_eq!(sharded.primary_of(0), 1);
                }
                5 => sharded.restore_replica(0, 0).unwrap(),
                6 => { sharded.reshard(7).unwrap(); }
                7 => { let _ = sharded.rebalance_if_skewed(); }
                8 => { sharded.reshard(1).unwrap(); }
                _ => {}
            }
            let bm = stream_m.next_batch(6, 5);
            let bs = stream_s.next_batch(6, 5);
            prop_assert_eq!(&bm.insertions, &bs.insertions);
            prop_assert_eq!(&bm.deletions, &bs.deletions);
            mono.apply_into(&bm, &mut buf);
            buf.apply_weighted_to(&mut shadow_mono);
            sharded.apply_into(&bs, &mut buf);
            // Oracle: the union of shard outputs equals the monolith.
            let mut shadow_sharded: FxHashMap<Edge, u64> = Default::default();
            sharded.output_into(&mut buf);
            buf.apply_weighted_to(&mut shadow_sharded);
            prop_assert_eq!(
                &shadow_mono,
                &shadow_sharded,
                "round {}: elastic sharded output diverged from monolith",
                round
            );
            prop_assert_eq!(
                BatchDynamic::num_live_edges(&sharded),
                mono.num_live_edges(),
                "round {}: live-edge counts diverge",
                round
            );
            // Mirror maintenance: re-seed after layout changes, apply
            // otherwise — and it must always match the oracle.
            if sharded.layout_epoch() != view_layout {
                view = ShardedView::of(&sharded);
                view_layout = sharded.layout_epoch();
            } else {
                view.apply(&sharded);
            }
            prop_assert_eq!(view.len(), shadow_mono.len(), "round {}: view size", round);
            for (&e, _) in shadow_mono.iter().take(20) {
                prop_assert!(view.contains(e), "round {}: view missing {:?}", round, e);
            }
        }
    }

    /// The fully-dynamic wrapper preserves the spanner property across
    /// arbitrary interleavings of insert and delete batches.
    #[test]
    fn fully_dynamic_mixed_schedule((n, edges, seed) in graph_strategy()) {
        let half = edges.len() / 2;
        let mut s = FullyDynamicSpanner::new(n, 2, &edges[..half], seed);
        // Insert the rest in chunks, deleting a prefix chunk in between.
        let rest: Vec<Edge> = edges[half..].to_vec();
        let mut live: FxHashSet<Edge> = edges[..half].iter().copied().collect();
        for chunk in rest.chunks(9) {
            let fresh: Vec<Edge> = chunk.iter().copied().filter(|e| live.insert(*e)).collect();
            s.insert_batch(&fresh);
            // delete up to 3 live edges
            let dels: Vec<Edge> = live.iter().copied().take(3).collect();
            for e in &dels {
                live.remove(e);
            }
            s.delete_batch(&dels);
        }
        let live_edges: Vec<Edge> = live.iter().copied().collect();
        let st = edge_stretch(n, &live_edges, &s.spanner_edges(), 20, seed);
        prop_assert!(st <= 3.0, "stretch {}", st);
        s.validate();
    }
}

/// Tiny deterministic RNG for batch scripts (replayable per case).
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Batch-dynamic connectivity vs a union-find oracle, monolith and
    /// sharded in lockstep: random batch link/cut (including cut storms
    /// that slash half the live edges at once, forcing replacement-edge
    /// searches), with every `batch_connected` answer, component count,
    /// and component size checked each round. The sharded engine is
    /// answered through `ConnView` over the unioned shard forests —
    /// the union of per-shard spanning forests preserves connectivity
    /// of the union graph, and this test is the proof in motion.
    #[test]
    fn batch_connectivity_matches_union_find(
        (n, edges, seed) in graph_strategy(),
        shards in 2usize..5,
    ) {
        let mut mono = BatchConnectivity::builder(n).build(&[]).unwrap();
        let mut engine = ShardedEngineBuilder::new(n)
            .shards(shards)
            .build_with(&[], move |_, es| BatchConnectivity::builder(n).build(es))
            .unwrap();
        let mut sview = ShardedView::of(&engine);
        let mut cview = ConnView::from_output(n, &mono);

        let mut live: FxHashSet<Edge> = FxHashSet::default();
        let mut rng = seed | 1;
        let mut delta = DeltaBuf::new();
        let mut answers = Vec::new();
        for round in 0..12 {
            let mut batch = UpdateBatch::default();
            let live_vec: Vec<Edge> = live.iter().copied().collect();
            if round % 4 == 3 {
                // Cut storm: delete every other live edge in one batch.
                for e in live_vec.iter().step_by(2) {
                    live.remove(e);
                    batch.deletions.push(*e);
                }
            } else {
                for _ in 0..3 {
                    if live_vec.is_empty() {
                        break;
                    }
                    let e = live_vec[(lcg(&mut rng) % live_vec.len() as u64) as usize];
                    if live.remove(&e) {
                        batch.deletions.push(e);
                    }
                }
            }
            let mut tries = 0;
            while batch.insertions.len() < 6 && tries < 40 {
                tries += 1;
                let e = edges[(lcg(&mut rng) % edges.len() as u64) as usize];
                if !batch.deletions.contains(&e) && live.insert(e) {
                    batch.insertions.push(e);
                }
            }

            mono.apply_into(&batch, &mut delta);
            cview.apply(&delta);
            engine.apply_into(&batch, &mut delta);
            sview.apply(&engine);
            let sconn = ConnView::from_edges(n, &sview.edges());

            let mut uf = UnionFind::new(n);
            for e in &live {
                uf.union(e.u, e.v);
            }

            prop_assert_eq!(mono.num_components(), uf.components());
            prop_assert_eq!(cview.num_components(), uf.components());
            prop_assert_eq!(sconn.num_components(), uf.components());

            let pairs: Vec<(V, V)> = (0..24)
                .map(|_| {
                    (
                        (lcg(&mut rng) % n as u64) as V,
                        (lcg(&mut rng) % n as u64) as V,
                    )
                })
                .collect();
            mono.batch_connected(&pairs, &mut answers);
            for (i, &(a, b)) in pairs.iter().enumerate() {
                let want = uf.same(a, b);
                prop_assert_eq!(answers[i], want, "monolith pair ({}, {})", a, b);
                prop_assert_eq!(cview.connected(a, b), want, "view pair ({}, {})", a, b);
                prop_assert_eq!(sconn.connected(a, b), want, "sharded pair ({}, {})", a, b);
            }
            for _ in 0..8 {
                let v = (lcg(&mut rng) % n as u64) as V;
                prop_assert_eq!(mono.component_size(v), uf.component_size(v));
                prop_assert_eq!(cview.component_size(v), uf.component_size(v));
                prop_assert_eq!(sconn.component_size(v), uf.component_size(v));
            }
        }
    }
}

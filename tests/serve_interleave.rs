//! Tier-2 concurrency property: interleave a serve-loop writer with
//! concurrent epoch-pinned readers and check that *every* answered
//! batch query is consistent with some prefix of the submitted update
//! sequence — no torn reads, no time travel.
//!
//! Why prefixes are the right oracle: a single producer feeds the
//! loop's queue in program order, the coalescer drains a contiguous
//! chunk per batch, and each published view is the engine state after
//! applying some number of those chunks. So every state a reader can
//! legally observe is the sequential set-semantics state after some
//! op-count c ∈ 0..=U — we precompute a signature (membership bits of
//! a fixed query set + the full degree vector) for every prefix and
//! require each pinned read to hit one of them, with per-reader
//! publish sequence numbers monotone.

use batch_spanners::gen;
use batch_spanners::prelude::*;
use bds_dstruct::FxHashSet;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;

/// Sequential set semantics of one raw op (insert-live and
/// delete-absent are no-ops, exactly as the coalescer nets them).
fn apply_op(live: &mut FxHashSet<Edge>, deg: &mut [u32], e: Edge, insert: bool) {
    let changed = if insert {
        live.insert(e)
    } else {
        live.remove(&e)
    };
    if changed {
        let d = if insert { 1 } else { u32::MAX }; // MAX == -1 wrapping
        deg[e.u as usize] = deg[e.u as usize].wrapping_add(d);
        deg[e.v as usize] = deg[e.v as usize].wrapping_add(d);
    }
}

/// The observable signature of a graph state for a fixed query set:
/// membership bits then the whole degree vector.
fn signature(queries: &[Edge], live: &FxHashSet<Edge>, deg: &[u32]) -> Vec<u32> {
    let mut sig: Vec<u32> = queries.iter().map(|e| live.contains(e) as u32).collect();
    sig.extend_from_slice(deg);
    sig
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn readers_observe_only_prefix_states(
        n in 24usize..48,
        seed in 0u64..1_000_000,
        raw in prop::collection::vec((0u64..10_000, 0u64..10_000, 0u64..2), 60..220),
    ) {
        let init = gen::gnm(n, 2 * n, seed);
        // Materialize the op sequence and every prefix's signature.
        let ops: Vec<(Edge, bool)> = raw
            .iter()
            .filter_map(|&(a, b, ins)| {
                Edge::try_new((a % n as u64) as V, (b % n as u64) as V)
                    .map(|e| (e, ins == 1))
            })
            .collect();
        let queries: Vec<Edge> = init
            .iter()
            .copied()
            .take(12)
            .chain(ops.iter().map(|&(e, _)| e).take(12))
            .collect();
        let mut live: FxHashSet<Edge> = init.iter().copied().collect();
        let mut deg = vec![0u32; n];
        for e in &init {
            deg[e.u as usize] += 1;
            deg[e.v as usize] += 1;
        }
        let mut valid: HashSet<Vec<u32>> = HashSet::new();
        valid.insert(signature(&queries, &live, &deg));
        for &(e, ins) in &ops {
            apply_op(&mut live, &mut deg, e, ins);
            valid.insert(signature(&queries, &live, &deg));
        }
        let final_sig = signature(&queries, &live, &deg);

        // Serve the same stream: MirrorSpanner shards make the merged
        // view exactly the live graph.
        let engine = ShardedEngineBuilder::new(n)
            .shards(3)
            .build_with(&init, move |_, es| MirrorSpanner::build(n, es))
            .unwrap();
        let (serve, ingest) = ServeLoopBuilder::new(engine)
            .queue_capacity(24) // small: forces writer/producer overlap
            .batch_policy(BatchPolicy::Fixed(16))
            .build();
        let reads = serve.read_handle();
        let writer = serve.spawn();

        let stop = Arc::new(AtomicBool::new(false));
        let verts: Vec<V> = (0..n as V).collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let r = reads.clone();
                let stop = Arc::clone(&stop);
                let queries = queries.clone();
                let verts = verts.clone();
                let valid = valid.clone();
                std::thread::spawn(move || -> Result<u64, String> {
                    let mut last_seq = 0u64;
                    let mut checks = 0u64;
                    let (mut hits, mut degs) = (Vec::new(), Vec::new());
                    while !stop.load(SeqCst) {
                        // One pin covers both batch queries: they must
                        // answer from the same committed prefix.
                        let g = r.pin();
                        if g.seq() < last_seq {
                            return Err(format!(
                                "published seq went backwards: {} -> {}",
                                last_seq,
                                g.seq()
                            ));
                        }
                        last_seq = g.seq();
                        g.batch_contains(&queries, &mut hits);
                        g.batch_degree(&verts, &mut degs);
                        drop(g);
                        let mut sig: Vec<u32> =
                            hits.iter().map(|&h| h as u32).collect();
                        sig.extend_from_slice(&degs);
                        if !valid.contains(&sig) {
                            return Err(format!(
                                "torn read at seq {last_seq}: answers match no prefix state"
                            ));
                        }
                        checks += 1;
                        std::thread::yield_now();
                    }
                    Ok(checks)
                })
            })
            .collect();

        for &(e, ins) in &ops {
            if ins {
                ingest.insert(e.u, e.v).unwrap();
            } else {
                ingest.delete(e.u, e.v).unwrap();
            }
        }
        drop(ingest);
        let report = writer.join().unwrap();
        stop.store(true, SeqCst);
        let mut total_checks = 0;
        for h in readers {
            match h.join().unwrap() {
                Ok(checks) => total_checks += checks,
                Err(m) => prop_assert!(false, "reader: {}", m),
            }
        }
        prop_assert!(total_checks > 0, "readers never completed a check");
        prop_assert_eq!(report.raw_updates, ops.len() as u64);

        // The final published state is exactly the full-sequence state.
        let g = reads.pin_at_least(report.final_seq);
        let (mut hits, mut degs) = (Vec::new(), Vec::new());
        g.batch_contains(&queries, &mut hits);
        g.batch_degree(&verts, &mut degs);
        let mut sig: Vec<u32> = hits.iter().map(|&h| h as u32).collect();
        sig.extend_from_slice(&degs);
        prop_assert_eq!(sig, final_sig, "final view != sequential oracle");
        prop_assert_eq!(g.len(), live.len());
    }
}

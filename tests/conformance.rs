//! Generic conformance suite for the unified batch-dynamic engine API:
//! one set of properties, instantiated for all ten implementors of
//! [`Decremental`] / [`FullyDynamic`] (the spanners, the sparsifiers,
//! and the connectivity product riding the same substrate).
//!
//! Properties checked per structure:
//! * **Delta-vs-materialized oracle** — replaying every batch's
//!   [`DeltaBuf`] into a shadow edge map reproduces `output_into`
//!   exactly (weights included for the sparsifiers).
//! * **Netting** — no edge appears in both sections of one delta.
//! * **Empty batch is a no-op** with zero recourse.
//! * **Delete-then-reinsert** (fully-dynamic only) — edges removed in
//!   one batch can come back in the next and the oracle still replays.

use batch_spanners::gen;
use batch_spanners::prelude::*;
use bds_dstruct::{FxHashMap, FxHashSet};

/// Materialized oracle: edge -> weight bits (1.0 for unweighted sets).
type Shadow = FxHashMap<Edge, u64>;

fn shadow_of(s: &impl BatchDynamic, buf: &mut DeltaBuf) -> Shadow {
    s.output_into(buf);
    let mut m = Shadow::default();
    buf.apply_weighted_to(&mut m);
    m
}

fn assert_matches(s: &impl BatchDynamic, shadow: &Shadow, buf: &mut DeltaBuf, ctx: &str) {
    s.output_into(buf);
    let mut m = Shadow::default();
    buf.apply_weighted_to(&mut m);
    assert_eq!(&m, shadow, "{ctx}: output diverged from delta replay");
}

fn assert_netted(buf: &DeltaBuf, ctx: &str) {
    if buf.is_weighted() {
        // A weighted edge may appear in both sections at *different*
        // weights (a cross-level reweighting); identical (edge, weight)
        // pairs would be a bounce that should have netted out.
        let ins: FxHashSet<(Edge, u64)> = buf
            .inserted_weighted()
            .map(|(e, w)| (e, w.to_bits()))
            .collect();
        for (e, w) in buf.deleted_weighted() {
            assert!(
                !ins.contains(&(e, w.to_bits())),
                "{ctx}: ({e:?}, {w}) in both delta sections"
            );
        }
    } else {
        let ins: FxHashSet<Edge> = buf.inserted().iter().copied().collect();
        for e in buf.deleted() {
            assert!(!ins.contains(e), "{ctx}: edge {e:?} in both delta sections");
        }
    }
}

/// Drive a [`Decremental`] structure through a deletion schedule.
fn conform_decremental<T: Decremental>(mut s: T, edges: &[Edge], chunk: usize, name: &str) {
    let mut buf = DeltaBuf::new();
    let mut shadow = shadow_of(&s, &mut buf);

    s.delete_into(&[], &mut buf);
    assert_eq!(buf.recourse(), 0, "{name}: empty batch reported a delta");
    assert_matches(&s, &shadow, &mut buf, name);

    let mut live = edges.to_vec();
    let mut round = 0;
    while !live.is_empty() {
        let batch: Vec<Edge> = live.split_off(live.len().saturating_sub(chunk));
        s.delete_into(&batch, &mut buf);
        assert_netted(&buf, name);
        buf.apply_weighted_to(&mut shadow);
        round += 1;
        if round % 3 == 0 || live.is_empty() {
            assert_matches(&s, &shadow, &mut buf, name);
        }
    }
    assert!(
        shadow.is_empty(),
        "{name}: deleting every edge must empty the output set"
    );
}

/// Drive a [`FullyDynamic`] structure through mixed batches, including a
/// delete-everything / reinsert-everything netting round-trip.
fn conform_fully_dynamic<T: FullyDynamic>(mut s: T, edges: &[Edge], chunk: usize, name: &str) {
    use bds_graph::stream::UpdateStream;
    let n = s.num_vertices();
    let mut buf = DeltaBuf::new();
    let mut shadow = shadow_of(&s, &mut buf);

    s.apply_into(&UpdateBatch::default(), &mut buf);
    assert_eq!(buf.recourse(), 0, "{name}: empty batch reported a delta");

    let mut stream = UpdateStream::new(n, edges, 0xfeed ^ chunk as u64);
    for round in 0..10 {
        let batch = stream.next_batch(chunk, chunk);
        s.apply_into(&batch, &mut buf);
        assert_netted(&buf, name);
        buf.apply_weighted_to(&mut shadow);
        if round % 3 == 2 {
            assert_matches(&s, &shadow, &mut buf, name);
        }
    }

    // Delete a slab of live edges, then reinsert the same edges in the
    // next batch: both deltas must replay, and the live graph is back.
    let slab: Vec<Edge> = stream
        .live_edges()
        .iter()
        .copied()
        .take(chunk * 2)
        .collect();
    let m_before = s.num_live_edges();
    s.delete_into(&slab, &mut buf);
    assert_netted(&buf, name);
    buf.apply_weighted_to(&mut shadow);
    s.insert_into(&slab, &mut buf);
    assert_netted(&buf, name);
    buf.apply_weighted_to(&mut shadow);
    assert_eq!(
        s.num_live_edges(),
        m_before,
        "{name}: delete-then-reinsert changed the live edge count"
    );
    assert_matches(&s, &shadow, &mut buf, name);
}

fn directed(edges: &[Edge]) -> Vec<(V, V, u64)> {
    edges
        .iter()
        .flat_map(|e| {
            [
                (e.u, e.v, ((e.u as u64) << 32) | e.u as u64),
                (e.v, e.u, ((e.v as u64) << 32) | e.v as u64),
            ]
        })
        .collect()
}

// --- the five Decremental implementors ---

#[test]
fn conformance_es_tree() {
    let n = 60;
    let edges = gen::gnm_connected(n, 200, 11);
    let t = EsTree::builder(n)
        .source(0)
        .max_depth(12)
        .build(&directed(&edges))
        .unwrap();
    conform_decremental(t, &edges, 7, "EsTree");
}

#[test]
fn conformance_decremental_spanner() {
    let n = 60;
    let edges = gen::gnm_connected(n, 200, 13);
    let s = DecrementalSpanner::builder(n)
        .stretch(2)
        .seed(17)
        .build(&edges)
        .unwrap();
    conform_decremental(s, &edges, 6, "DecrementalSpanner");
}

#[test]
fn conformance_monotone_spanner() {
    let n = 50;
    let edges = gen::gnm_connected(n, 160, 19);
    let s = MonotoneSpanner::builder(n)
        .copies(4)
        .beta(0.3)
        .seed(23)
        .build(&edges)
        .unwrap();
    conform_decremental(s, &edges, 8, "MonotoneSpanner");
}

#[test]
fn conformance_bundle_spanner() {
    let n = 50;
    let edges = gen::gnm_connected(n, 180, 29);
    let s = BundleSpanner::builder(n)
        .depth(2)
        .copies(4)
        .beta(0.3)
        .seed(31)
        .build(&edges)
        .unwrap();
    conform_decremental(s, &edges, 8, "BundleSpanner");
}

#[test]
fn conformance_decremental_sparsifier() {
    let n = 50;
    let edges = gen::gnm_connected(n, 220, 37);
    let s = DecrementalSparsifier::builder(n)
        .depth(1)
        .copies(4)
        .beta(0.3)
        .threshold(10)
        .seed(41)
        .build(&edges)
        .unwrap();
    conform_decremental(s, &edges, 9, "DecrementalSparsifier");
}

// --- the four FullyDynamic implementors ---

#[test]
fn conformance_fully_dynamic_spanner() {
    let n = 60;
    let edges = gen::gnm_connected(n, 220, 43);
    let s = FullyDynamicSpanner::builder(n)
        .stretch(2)
        .seed(47)
        .build(&edges)
        .unwrap();
    conform_fully_dynamic(s, &edges, 6, "FullyDynamicSpanner");
}

#[test]
fn conformance_sparse_spanner() {
    let n = 60;
    let edges = gen::gnm_connected(n, 220, 53);
    let s = SparseSpanner::builder(n)
        .rates(&[3.0])
        .seed(59)
        .build(&edges)
        .unwrap();
    conform_fully_dynamic(s, &edges, 5, "SparseSpanner");
}

#[test]
fn conformance_ultra_sparse_spanner() {
    let n = 60;
    let edges = gen::gnm_connected(n, 220, 61);
    let s = UltraSparseSpanner::builder(n)
        .x(2)
        .seed(67)
        .build(&edges)
        .unwrap();
    conform_fully_dynamic(s, &edges, 5, "UltraSparseSpanner");
}

#[test]
fn conformance_batch_connectivity() {
    // The connectivity product's output plane is its spanning forest;
    // deletion chunks routinely cut tree edges, so the delta-replay
    // oracle exercises the replacement-edge search every round.
    let n = 60;
    let edges = gen::gnm_connected(n, 220, 109);
    let s = BatchConnectivity::builder(n).build(&edges).unwrap();
    conform_fully_dynamic(s, &edges, 6, "BatchConnectivity");
}

#[test]
fn conformance_fully_dynamic_sparsifier() {
    let n = 50;
    let edges = gen::gnm_connected(n, 200, 71);
    let s = FullyDynamicSparsifier::builder(n)
        .depth(1)
        .seed(73)
        .build(&edges)
        .unwrap();
    conform_fully_dynamic(s, &edges, 6, "FullyDynamicSparsifier");
}

// --- the sharded dispatcher must satisfy the same contract as any
//     single structure (the 9-way suite's generic drivers run unchanged
//     over it, unweighted and weighted) ---

#[test]
fn conformance_sharded_engine() {
    let n = 60;
    let edges = gen::gnm_connected(n, 220, 79);
    for shards in [1usize, 2, 7] {
        let s = ShardedEngineBuilder::new(n)
            .shards(shards)
            .build_with(&edges, move |i, shard_edges| {
                FullyDynamicSpanner::builder(n)
                    .stretch(2)
                    .seed(83 + i as u64)
                    .build(shard_edges)
            })
            .unwrap();
        conform_fully_dynamic(s, &edges, 6, &format!("ShardedEngine[{shards}]"));
    }
}

#[test]
fn conformance_sharded_engine_replicated_jump() {
    // The elastic configuration: consistent-hash routing and two
    // replicas per lane must satisfy exactly the same contract as a
    // single structure (writes fan to every replica, the served deltas
    // follow the primaries).
    let n = 60;
    let edges = gen::gnm_connected(n, 220, 103);
    let s = ShardedEngineBuilder::new(n)
        .shards(3)
        .replicas(2)
        .partitioner(JumpPartitioner::new())
        .build_with(&edges, move |i, shard_edges| {
            FullyDynamicSpanner::builder(n)
                .stretch(2)
                .seed(107 + i as u64)
                .build(shard_edges)
        })
        .unwrap();
    conform_fully_dynamic(s, &edges, 6, "ShardedEngine[3x2 jump]");
}

#[test]
fn conformance_sharded_connectivity() {
    // The connectivity engine behind the sharded dispatcher: per-shard
    // forests merge through the same delta plane as the spanners.
    let n = 60;
    let edges = gen::gnm_connected(n, 220, 113);
    for shards in [1usize, 3] {
        let s = ShardedEngineBuilder::new(n)
            .shards(shards)
            .build_with(&edges, move |_, shard_edges| {
                BatchConnectivity::builder(n).build(shard_edges)
            })
            .unwrap();
        conform_fully_dynamic(s, &edges, 6, &format!("ShardedEngine<Conn>[{shards}]"));
    }
}

#[test]
fn conformance_sharded_sparsifier() {
    // The weighted merge path: per-shard weight lanes must survive the
    // merge + net intact.
    let n = 50;
    let edges = gen::gnm_connected(n, 200, 89);
    let s = ShardedEngineBuilder::new(n)
        .shards(3)
        .build_with(&edges, move |i, shard_edges| {
            FullyDynamicSparsifier::builder(n)
                .depth(1)
                .seed(97 + i as u64)
                .build(shard_edges)
        })
        .unwrap();
    conform_fully_dynamic(s, &edges, 6, "ShardedEngine<Sparsifier>");
}

// --- cross-structure consistency: every implementor counts canonical
//     (undirected) edges. EsTree used to report *directed* edges here —
//     a 2× mismatch for any harness comparing or load-balancing across
//     structures; this assertion keeps that bug dead. ---

#[test]
fn num_live_edges_agrees_across_structures() {
    let n = 60;
    let edges = gen::gnm_connected(n, 200, 101);
    let mut structures: Vec<(&str, Box<dyn Decremental>)> = vec![
        (
            "EsTree",
            Box::new(
                EsTree::builder(n)
                    .source(0)
                    .max_depth(16)
                    .build(&directed(&edges))
                    .unwrap(),
            ),
        ),
        (
            "DecrementalSpanner",
            Box::new(
                DecrementalSpanner::builder(n)
                    .stretch(2)
                    .seed(3)
                    .build(&edges)
                    .unwrap(),
            ),
        ),
        (
            "MonotoneSpanner",
            Box::new(
                MonotoneSpanner::builder(n)
                    .copies(4)
                    .beta(0.3)
                    .seed(5)
                    .build(&edges)
                    .unwrap(),
            ),
        ),
        (
            "BundleSpanner",
            Box::new(
                BundleSpanner::builder(n)
                    .depth(2)
                    .copies(4)
                    .beta(0.3)
                    .seed(7)
                    .build(&edges)
                    .unwrap(),
            ),
        ),
        (
            "DecrementalSparsifier",
            Box::new(
                DecrementalSparsifier::builder(n)
                    .depth(1)
                    .copies(4)
                    .beta(0.3)
                    .threshold(10)
                    .seed(11)
                    .build(&edges)
                    .unwrap(),
            ),
        ),
        (
            "FullyDynamicSpanner",
            Box::new(
                FullyDynamicSpanner::builder(n)
                    .stretch(2)
                    .seed(13)
                    .build(&edges)
                    .unwrap(),
            ),
        ),
        (
            "SparseSpanner",
            Box::new(
                SparseSpanner::builder(n)
                    .rates(&[3.0])
                    .seed(17)
                    .build(&edges)
                    .unwrap(),
            ),
        ),
        (
            "UltraSparseSpanner",
            Box::new(
                UltraSparseSpanner::builder(n)
                    .x(2)
                    .seed(19)
                    .build(&edges)
                    .unwrap(),
            ),
        ),
        (
            "FullyDynamicSparsifier",
            Box::new(
                FullyDynamicSparsifier::builder(n)
                    .depth(1)
                    .seed(23)
                    .build(&edges)
                    .unwrap(),
            ),
        ),
        (
            "ShardedEngine",
            Box::new(
                ShardedEngineBuilder::new(n)
                    .shards(3)
                    .build_with(&edges, move |i, shard_edges| {
                        FullyDynamicSpanner::builder(n)
                            .stretch(2)
                            .seed(29 + i as u64)
                            .build(shard_edges)
                    })
                    .unwrap(),
            ),
        ),
    ];
    for (name, s) in &structures {
        assert_eq!(
            s.num_live_edges(),
            edges.len(),
            "{name}: initial live-edge count diverges"
        );
    }
    // Drive the same canonical deletion batch through every structure;
    // the counts must stay in lockstep.
    let dels: Vec<Edge> = edges.iter().copied().take(40).collect();
    let mut buf = DeltaBuf::new();
    for (name, s) in &mut structures {
        s.delete_into(&dels, &mut buf);
        assert_eq!(
            s.num_live_edges(),
            edges.len() - dels.len(),
            "{name}: live-edge count diverges after a deletion batch"
        );
    }
}

// --- builder validation is part of the contract ---

#[test]
fn builders_reject_bad_input() {
    assert!(matches!(
        FullyDynamicSpanner::builder(1).build(&[]),
        Err(ConfigError::TooFewVertices { .. })
    ));
    assert!(matches!(
        FullyDynamicSpanner::builder(10).stretch(0).build(&[]),
        Err(ConfigError::InvalidParam { .. })
    ));
    assert!(matches!(
        DecrementalSpanner::builder(4).build(&[Edge::new(0, 9)]),
        Err(ConfigError::VertexOutOfRange { .. })
    ));
    assert!(matches!(
        SparseSpanner::builder(10).rates(&[0.5]).build(&[]),
        Err(ConfigError::InvalidParam { .. })
    ));
    assert!(matches!(
        UltraSparseSpanner::builder(10).x(1).build(&[]),
        Err(ConfigError::InvalidParam { .. })
    ));
    assert!(matches!(
        BundleSpanner::builder(10)
            .depth(0)
            .build(&[Edge::new(0, 1)]),
        Err(ConfigError::InvalidParam { .. })
    ));
    assert!(matches!(
        MonotoneSpanner::builder(10).beta(-1.0).build(&[]),
        Err(ConfigError::InvalidParam { .. })
    ));
    assert!(matches!(
        DecrementalSparsifier::builder(10).depth(0).build(&[]),
        Err(ConfigError::InvalidParam { .. })
    ));
    assert!(matches!(
        FullyDynamicSparsifier::builder(10).build(&[Edge::new(0, 1), Edge::new(1, 0)]),
        Err(ConfigError::DuplicateEdge(_))
    ));
    assert!(matches!(
        EsTree::builder(5).source(9).build(&[]),
        Err(ConfigError::VertexOutOfRange { .. })
    ));
    assert!(matches!(
        BatchConnectivity::builder(0).build(&[]),
        Err(ConfigError::TooFewVertices { .. })
    ));
    assert!(matches!(
        BatchConnectivity::builder(4).build(&[Edge::new(0, 9)]),
        Err(ConfigError::VertexOutOfRange { .. })
    ));
    assert!(matches!(
        BatchConnectivity::builder(4).build(&[Edge::new(0, 1), Edge::new(1, 0)]),
        Err(ConfigError::DuplicateEdge(_))
    ));
}

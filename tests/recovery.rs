//! Crash-recovery torture tests over the write-ahead log (PR 7): kill
//! the serving pipeline at a random batch, recover from snapshot + log,
//! and demand *exact* equality against a monolith oracle — then do it
//! again with the log torn at every byte offset of its final records,
//! and again with single bits flipped anywhere in the artifacts. The
//! recovery path must never panic on bad bytes and must never lose a
//! published batch (write-ahead ordering).

use std::cell::Cell;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use batch_spanners::gen;
use batch_spanners::prelude::*;
use batch_spanners::wal::{self, WalReader, WalRecord};
use bds_dstruct::FxHashSet;
use proptest::prelude::*;

fn tmp(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

// ---------------------------------------------------------------------------
// Harness: a shard wrapper that panics after a set number of batches,
// killing the serve-loop writer mid-pipeline exactly like a crash.
// ---------------------------------------------------------------------------

struct Poisoned {
    inner: MirrorSpanner,
    applies_left: Cell<u32>,
}

impl BatchDynamic for Poisoned {
    fn num_vertices(&self) -> usize {
        self.inner.num_vertices()
    }
    fn num_live_edges(&self) -> usize {
        self.inner.num_live_edges()
    }
    fn output_into(&self, out: &mut DeltaBuf) {
        self.inner.output_into(out)
    }
    fn stats(&self) -> BatchStats {
        self.inner.stats()
    }
}

impl Decremental for Poisoned {
    fn delete_into(&mut self, deletions: &[Edge], out: &mut DeltaBuf) {
        self.inner.delete_into(deletions, out);
    }
}

impl FullyDynamic for Poisoned {
    fn insert_into(&mut self, insertions: &[Edge], out: &mut DeltaBuf) {
        self.inner.insert_into(insertions, out);
    }
    fn apply_into(&mut self, batch: &UpdateBatch, out: &mut DeltaBuf) {
        let left = self.applies_left.get();
        assert!(left > 0, "poisoned shard: injected crash");
        self.applies_left.set(left - 1);
        self.inner.apply_into(batch, out);
    }
}

/// Tiny deterministic RNG so every proptest case is replayable.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

struct CrashRun {
    log: PathBuf,
    snap: PathBuf,
    /// Batch seq of the last *published* view when the writer died.
    published_seq: u64,
    crashed: bool,
}

/// Drive a durable serve loop over `updates`, with every shard poisoned
/// to panic on its `kill_after`-th batch. Returns the on-disk artifacts
/// plus what readers had seen at the moment of death.
fn run_until_crash(
    tag: &str,
    n: usize,
    init: &[Edge],
    updates: &[Update],
    kill_after: u32,
    snapshot_every: u64,
) -> CrashRun {
    let log = tmp(&format!("{tag}.wal"));
    let snap = tmp(&format!("{tag}.snap"));
    let init_owned = init.to_vec();
    let engine = ShardedEngineBuilder::new(n)
        .shards(3)
        .build_with(&init_owned, move |_, es| {
            Ok::<_, ConfigError>(Poisoned {
                inner: MirrorSpanner::build(n, es)?,
                applies_left: Cell::new(kill_after),
            })
        })
        .unwrap();
    let (serve, ingest) = ServeLoopBuilder::new(engine)
        .queue_capacity(8)
        .batch_policy(BatchPolicy::Fixed(4))
        .durability(
            WalConfig::new(&log)
                .fsync(FsyncPolicy::EveryBatch)
                .snapshot(&snap, snapshot_every),
        )
        .build();
    let reads = serve.read_handle();
    let writer = serve.spawn();
    for &up in updates {
        if ingest.send(up).is_err() {
            break;
        }
    }
    drop(ingest);
    let crashed = writer.join().is_err();
    let published_seq = reads.pin().seq();
    CrashRun {
        log,
        snap,
        published_seq,
        crashed,
    }
}

// ---------------------------------------------------------------------------
// Oracle: walk the log once, fold every Batch record into a monolith
// shadow, and remember each record's byte extent for surgery.
// ---------------------------------------------------------------------------

struct Rec {
    start: u64,
    end: u64,
    /// Sequence the record carries (Seed/Batch/Delta all have one).
    seq: u64,
    is_batch: bool,
}

struct LogMap {
    base_seq: u64,
    records: Vec<Rec>,
    /// `states[s - base_seq]` = live input-edge set after batch `s`
    /// (index 0 is the initial state).
    states: Vec<FxHashSet<Edge>>,
    file_len: u64,
}

impl LogMap {
    fn walk(log: &Path, init: &[Edge]) -> Self {
        let mut rd = WalReader::open(log).expect("oracle walk expects a clean log");
        let base_seq = rd.header().base_seq;
        let mut records = Vec::new();
        let mut states = vec![init.iter().copied().collect::<FxHashSet<Edge>>()];
        loop {
            let start = rd.offset();
            let Some(rec) = rd.next_record().expect("oracle walk expects a clean log") else {
                break;
            };
            records.push(Rec {
                start,
                end: rd.offset(),
                seq: rec.seq(),
                is_batch: matches!(rec, WalRecord::Batch { .. }),
            });
            if let WalRecord::Batch { seq, batch } = rec {
                assert_eq!(seq, base_seq + states.len() as u64, "log must be gapless");
                let mut next = states.last().unwrap().clone();
                for e in &batch.deletions {
                    assert!(next.remove(e), "logged deletion of an absent edge");
                }
                for e in &batch.insertions {
                    assert!(next.insert(*e), "logged insertion of a live edge");
                }
                states.push(next);
            }
        }
        assert!(!rd.torn_tail(), "oracle walk expects a clean log");
        LogMap {
            base_seq,
            records,
            states,
            file_len: fs::metadata(log).unwrap().len(),
        }
    }

    fn oracle_at(&self, seq: u64) -> &FxHashSet<Edge> {
        &self.states[(seq - self.base_seq) as usize]
    }

    fn max_batch_seq(&self) -> u64 {
        self.records
            .iter()
            .filter(|r| r.is_batch)
            .map(|r| r.seq)
            .max()
            .unwrap_or(self.base_seq)
    }

    /// Highest batch seq whose record lies entirely within `prefix_len`
    /// bytes — what a correct recovery of that prefix must reach.
    fn batch_seq_within(&self, prefix_len: u64) -> u64 {
        self.records
            .iter()
            .filter(|r| r.is_batch && r.end <= prefix_len)
            .map(|r| r.seq)
            .max()
            .unwrap_or(self.base_seq)
    }

    /// Seq of the last record (of any kind) ending at or before `off` —
    /// what `RecoverError::Corrupt` must report for a record at `off`.
    fn last_seq_before(&self, off: u64) -> u64 {
        self.records
            .iter()
            .rev()
            .find(|r| r.end <= off)
            .map(|r| r.seq)
            .unwrap_or(self.base_seq)
    }

    /// Start offset of the record containing byte `pos`.
    fn record_start_of(&self, pos: u64) -> u64 {
        self.records
            .iter()
            .find(|r| r.start <= pos && pos < r.end)
            .map(|r| r.start)
            .expect("position must fall inside a record")
    }

    fn is_boundary(&self, off: u64) -> bool {
        off == self.file_len
            || self.records.first().map(|r| r.start) == Some(off)
            || self.records.iter().any(|r| r.end == off)
    }
}

fn recover_mirror(
    snap: &Path,
    log: &Path,
    n: usize,
) -> Result<wal::Recovered<MirrorSpanner, HashPartitioner>, RecoverError> {
    wal::recover(
        snap,
        log,
        ShardedEngineBuilder::new(n).shards(3),
        move |_, es| MirrorSpanner::build(n, es),
    )
}

fn engine_edges<S, P>(engine: &ShardedEngine<S, P>) -> FxHashSet<Edge>
where
    S: FullyDynamic + Send,
    P: Partitioner,
{
    engine.live_input_edges().collect()
}

/// A random update stream over `n` vertices, deterministic in `seed`.
fn update_stream(n: usize, len: usize, seed: u64) -> Vec<Update> {
    let mut rng = seed | 1;
    let mut ups = Vec::with_capacity(len);
    while ups.len() < len {
        let a = (lcg(&mut rng) % n as u64) as V;
        let b = (lcg(&mut rng) % n as u64) as V;
        if a == b {
            continue;
        }
        let e = Edge::new(a, b);
        ups.push(if lcg(&mut rng).is_multiple_of(2) {
            Update::Insert(e)
        } else {
            Update::Delete(e)
        });
    }
    ups
}

// ---------------------------------------------------------------------------
// Headline: kill at a random batch, recover, compare to the monolith.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Crash the durable pipeline at a random batch seq (and snapshot
    /// cadence), recover from snapshot + log, and require the rebuilt
    /// engine to exactly equal a monolith `MirrorSpanner` fed the same
    /// logged batches — never behind what readers saw (write-ahead).
    #[test]
    fn crash_at_random_batch_recovers_exactly(
        seed in any::<u64>(),
        kill_after in 1u32..12,
        snapshot_every in 0u64..4,
    ) {
        let n = 48;
        let init = gen::gnm(n, 90, seed ^ 0x5eed);
        let updates = update_stream(n, 200, seed);
        let tag = format!("crash_{seed:016x}_{kill_after}_{snapshot_every}");
        let run = run_until_crash(&tag, n, &init, &updates, kill_after, snapshot_every);

        let map = LogMap::walk(&run.log, &init);
        let r = recover_mirror(&run.snap, &run.log, n).expect("clean log must recover");
        // Write-ahead ordering: every published batch is in the log, so
        // recovery can never land behind a state a reader observed.
        prop_assert!(
            r.seq >= run.published_seq,
            "recovered seq {} behind published {}", r.seq, run.published_seq
        );
        prop_assert_eq!(r.seq, map.max_batch_seq());
        prop_assert_eq!(r.seq, r.engine.seq());
        prop_assert!(!r.torn_tail);
        prop_assert_eq!(
            r.engine.engine_id(),
            WalReader::open(&run.log).unwrap().header().engine_id,
            "recovered engine must adopt the logged identity"
        );

        // Monolith oracle: one unsharded MirrorSpanner fed the same
        // logged batches, plus the set-fold the LogMap maintains.
        let mut monolith = MirrorSpanner::build(n, &init).unwrap();
        let mut delta = DeltaBuf::new();
        let mut replayed = 0u64;
        let mut rd = WalReader::open(&run.log).unwrap();
        while let Some(rec) = rd.next_record().unwrap() {
            if let WalRecord::Batch { batch, .. } = rec {
                monolith.apply_into(&batch, &mut delta);
                replayed += 1;
            }
        }
        prop_assert_eq!(r.seq, map.base_seq + replayed);
        let mut out = DeltaBuf::new();
        monolith.output_into(&mut out);
        let monolith_edges: FxHashSet<Edge> = out.inserted().iter().copied().collect();
        let recovered_edges = engine_edges(&r.engine);
        prop_assert_eq!(&recovered_edges, &monolith_edges);
        prop_assert_eq!(&recovered_edges, map.oracle_at(r.seq));
        if run.crashed {
            // The fatal batch was logged before the engine ever saw it.
            prop_assert!(map.max_batch_seq() > run.published_seq);
        }
    }
}

// ---------------------------------------------------------------------------
// Torn writes: truncate the log at EVERY byte offset of its final
// records and recover each prefix.
// ---------------------------------------------------------------------------

/// A clean (uncrashed) durable run whose artifacts the surgery tests
/// cut up: initial snapshot only, so recovery must replay every batch.
fn clean_artifacts(tag: &str, n: usize, init: &[Edge], ops: usize) -> CrashRun {
    let run = run_until_crash(tag, n, init, &update_stream(n, ops, 0xc1ea4), u32::MAX, 0);
    assert!(!run.crashed);
    run
}

#[test]
fn torn_tail_truncation_at_every_offset_recovers_prefix() {
    let n = 32;
    let init = gen::gnm(n, 60, 7);
    let run = clean_artifacts("torn", n, &init, 100);
    let map = LogMap::walk(&run.log, &init);
    let bytes = fs::read(&run.log).unwrap();
    // Cut everywhere from the start of the last Batch record to EOF:
    // that tears the final input record at every offset, and the
    // trailing output (Delta) record with it.
    let last_batch_start = map
        .records
        .iter()
        .filter(|r| r.is_batch)
        .map(|r| r.start)
        .max()
        .expect("run must have logged at least one batch");
    let torn = tmp("torn_cut.wal");
    for cut in last_batch_start..=map.file_len {
        fs::write(&torn, &bytes[..cut as usize]).unwrap();
        let r = recover_mirror(&run.snap, &torn, n)
            .unwrap_or_else(|e| panic!("cut at {cut} must recover, got {e}"));
        let expected = map.batch_seq_within(cut);
        assert_eq!(r.seq, expected, "cut at {cut}");
        assert_eq!(
            r.torn_tail,
            !map.is_boundary(cut),
            "cut at {cut}: torn iff mid-record"
        );
        assert_eq!(
            &engine_edges(&r.engine),
            map.oracle_at(expected),
            "cut at {cut}"
        );
    }
}

// ---------------------------------------------------------------------------
// Bit flips: anywhere in the header or body, recovery returns a typed
// error (or the checksum-valid prefix) — it never panics.
// ---------------------------------------------------------------------------

#[test]
fn bit_flips_yield_typed_corruption_never_a_panic() {
    let n = 32;
    let init = gen::gnm(n, 60, 9);
    let run = clean_artifacts("flip", n, &init, 100);
    let map = LogMap::walk(&run.log, &init);
    let bytes = fs::read(&run.log).unwrap();
    let header_len = map.records.first().map(|r| r.start).unwrap() as usize;

    // Every header byte, plus a deterministic sample of body bytes and
    // every record's length field (the one field that can turn a
    // complete record into an apparent torn tail).
    let mut positions: Vec<usize> = (0..header_len).collect();
    let mut rng = 0xf11bu64;
    for _ in 0..300 {
        positions.push(header_len + (lcg(&mut rng) as usize % (bytes.len() - header_len)));
    }
    positions.extend(map.records.iter().map(|r| r.start as usize));
    positions.sort_unstable();
    positions.dedup();

    let fuzzed = tmp("flip_fuzz.wal");
    for &pos in &positions {
        let mut mutated = bytes.clone();
        mutated[pos] ^= 1 << (pos % 8);
        fs::write(&fuzzed, &mutated).unwrap();

        // Strict recovery: a flipped record is Corrupt — unless the
        // flip hit a length field and the record now merely *ends
        // early*, which is indistinguishable from a torn tail.
        match recover_mirror(&run.snap, &fuzzed, n) {
            Ok(r) => {
                assert!(
                    pos >= header_len,
                    "flip at header byte {pos} must not recover"
                );
                let expected = map.batch_seq_within(map.record_start_of(pos as u64));
                assert_eq!(r.seq, expected, "flip at {pos}");
                assert_eq!(&engine_edges(&r.engine), map.oracle_at(expected));
            }
            Err(RecoverError::Corrupt { seq, offset }) => {
                if pos < header_len {
                    assert!(
                        (offset as usize) < header_len,
                        "flip at header byte {pos}: offset {offset} must be in the header"
                    );
                } else {
                    let start = map.record_start_of(pos as u64);
                    assert_eq!(offset, start, "flip at {pos}");
                    assert_eq!(seq, map.last_seq_before(start), "flip at {pos}");
                }
            }
            Err(e) => panic!("flip at {pos}: unexpected error kind {e}"),
        }

        // Tolerant recovery: same prefix, corruption reported not fatal.
        if pos >= header_len {
            let (r, corruption) = wal::recover_prefix(
                &run.snap,
                &fuzzed,
                ShardedEngineBuilder::new(n).shards(3),
                move |_, es| MirrorSpanner::build(n, es),
            )
            .unwrap_or_else(|e| panic!("flip at {pos}: prefix recovery failed with {e}"));
            let start = map.record_start_of(pos as u64);
            let expected = map.batch_seq_within(start);
            assert_eq!(r.seq, expected, "flip at {pos}");
            assert_eq!(&engine_edges(&r.engine), map.oracle_at(expected));
            if let Some(c) = corruption {
                assert_eq!(c.offset, start, "flip at {pos}");
                assert_eq!(c.seq, map.last_seq_before(start), "flip at {pos}");
            } else {
                // The flip turned the tail into an apparent torn write.
                assert!(r.torn_tail, "flip at {pos}: no corruption and no torn tail");
            }
        }
    }
}

#[test]
fn snapshot_bit_flips_are_typed_corruption() {
    let n = 32;
    let init = gen::gnm(n, 60, 11);
    let run = clean_artifacts("snapflip", n, &init, 60);
    let bytes = fs::read(&run.snap).unwrap();
    let fuzzed = tmp("snapflip_fuzz.snap");
    let mut rng = 0x5eedu64;
    let positions: Vec<usize> = (0..64)
        .map(|_| lcg(&mut rng) as usize % bytes.len())
        .collect();
    for pos in positions {
        let mut mutated = bytes.clone();
        mutated[pos] ^= 1 << (pos % 8);
        fs::write(&fuzzed, &mutated).unwrap();
        match wal::Snapshot::read_from(&fuzzed) {
            Err(RecoverError::Corrupt { .. }) => {}
            Err(e) => panic!("flip at {pos}: unexpected error kind {e}"),
            Ok(_) => panic!("flip at {pos}: checksum must catch a single-bit flip"),
        }
    }
}

#[test]
fn mismatched_artifacts_are_rejected_with_typed_errors() {
    let n = 24;
    let init = gen::gnm(n, 40, 13);
    let a = clean_artifacts("mismatch_a", n, &init, 40);
    let b = clean_artifacts("mismatch_b", n, &init, 40);
    // Snapshot from engine A against engine B's log: not the same
    // logical engine, refused before any replay.
    match recover_mirror(&a.snap, &b.log, n) {
        Err(RecoverError::EngineMismatch { snapshot, log }) => assert_ne!(snapshot, log),
        other => panic!(
            "cross-engine artifacts must fail with EngineMismatch, got {:?}",
            other.err()
        ),
    }
}

// ---------------------------------------------------------------------------
// FollowerView: a log-tailing mirror on another thread trails the
// primary and converges to the final published state.
// ---------------------------------------------------------------------------

#[test]
fn follower_tails_the_log_from_another_thread() {
    let n = 64;
    let init = gen::gnm(n, 120, 21);
    let log = tmp("follower.wal");
    let init_owned = init.clone();
    let engine = ShardedEngineBuilder::new(n)
        .shards(2)
        .build_with(&init_owned, move |_, es| MirrorSpanner::build(n, es))
        .unwrap();
    let (serve, ingest) = ServeLoopBuilder::new(engine)
        .queue_capacity(16)
        .batch_policy(BatchPolicy::Fixed(8))
        .durability(WalConfig::new(&log).fsync(FsyncPolicy::EveryBatch))
        .build();
    let reads = serve.read_handle();
    let writer = serve.spawn();

    // 0 = unknown; the producer publishes the final seq once the
    // writer reports, and the follower polls until it gets there.
    let target = Arc::new(AtomicU64::new(0));
    let follower_target = Arc::clone(&target);
    let log_for_follower = log.clone();
    let follower = std::thread::spawn(move || {
        let mut fv = wal::FollowerView::open(&log_for_follower).expect("header is synced at build");
        let mut last = fv.seq();
        loop {
            fv.catch_up().expect("live log must stay checksum-clean");
            assert!(fv.seq() >= last, "follower seq must be monotone");
            last = fv.seq();
            let t = follower_target.load(Ordering::Acquire);
            if t != 0 && fv.is_seeded() && fv.seq() >= t {
                return fv;
            }
            std::thread::yield_now();
        }
    });

    for up in update_stream(n, 400, 0xf0110) {
        ingest.send(up).unwrap();
    }
    drop(ingest);
    let report = writer.join().unwrap();
    target.store(report.final_seq.max(1), Ordering::Release);
    let fv = follower.join().unwrap();

    let primary = reads.pin_at_least(report.final_seq);
    assert_eq!(fv.seq(), primary.seq());
    let follower_edges: FxHashSet<Edge> = fv.view().edges().into_iter().collect();
    let primary_edges: FxHashSet<Edge> = primary.edges().into_iter().collect();
    assert_eq!(follower_edges, primary_edges);
    assert_eq!(report.wal_batches, report.batches);
    assert!(report.wal_syncs >= report.batches);
}

// ---------------------------------------------------------------------------
// Randomized structures: recovery and replica restore must reproduce
// the *same coin flips*, not just the same input set.
// ---------------------------------------------------------------------------

fn spanner_factory(
    n: usize,
) -> impl FnMut(usize, &[Edge]) -> Result<FullyDynamicSpanner, ConfigError> + Send + Clone + 'static
{
    move |i, es| {
        FullyDynamicSpanner::builder(n)
            .stretch(2)
            .seed(1000 + i as u64)
            .build(es)
    }
}

/// Output edge set of one shard structure.
fn output_of<S: BatchDynamic>(s: &S) -> FxHashSet<Edge> {
    let mut out = DeltaBuf::new();
    s.output_into(&mut out);
    out.inserted().iter().copied().collect()
}

#[test]
fn recovered_randomized_engine_answers_identically_to_primary() {
    let n = 80;
    let init = gen::gnm_connected(n, 200, 5);
    let log = tmp("rand_recover.wal");
    let snap = tmp("rand_recover.snap");
    let engine = ShardedEngineBuilder::new(n)
        .shards(2)
        .build_with(&init, spanner_factory(n))
        .unwrap();
    let (serve, ingest) = ServeLoopBuilder::new(engine)
        .queue_capacity(32)
        .batch_policy(BatchPolicy::Fixed(8))
        // Initial snapshot only: recovery then replays the entire run,
        // which for a seeded structure reproduces the exact coin flips.
        .durability(WalConfig::new(&log).snapshot(&snap, 0))
        .build();
    let reads = serve.read_handle();
    let writer = serve.spawn();
    for up in update_stream(n, 300, 0xabcde) {
        ingest.send(up).unwrap();
    }
    drop(ingest);
    let report = writer.join().unwrap();
    let primary = reads.pin_at_least(report.final_seq);

    let r = wal::recover(
        &snap,
        &log,
        ShardedEngineBuilder::new(n).shards(2),
        spanner_factory(n),
    )
    .expect("clean log must recover");
    assert_eq!(r.seq, report.final_seq);
    // Not merely the same input set: the recovered spanner made the
    // same randomized choices, so its *output* matches edge-for-edge.
    let recovered_out: FxHashSet<Edge> = ShardedView::of(&r.engine).edges().into_iter().collect();
    let primary_out: FxHashSet<Edge> = primary.edges().into_iter().collect();
    assert_eq!(recovered_out, primary_out);
}

#[test]
fn restored_replica_of_randomized_structure_answers_identically() {
    let n = 80;
    let init = gen::gnm_connected(n, 200, 6);
    let mut engine = ShardedEngineBuilder::new(n)
        .shards(2)
        .replicas(2)
        .replica_log(true)
        .build_with(&init, spanner_factory(n))
        .unwrap();
    let mut shadow: FxHashSet<Edge> = init.iter().copied().collect();
    let mut delta = DeltaBuf::new();
    let mut rng = 0x9e11u64;
    let step = |engine: &mut ShardedEngine<FullyDynamicSpanner, HashPartitioner>,
                shadow: &mut FxHashSet<Edge>,
                rng: &mut u64,
                delta: &mut DeltaBuf| {
        let mut batch = UpdateBatch::default();
        let live: Vec<Edge> = shadow.iter().copied().collect();
        for k in 0..6 {
            if k % 2 == 0 && !live.is_empty() {
                let e = live[lcg(rng) as usize % live.len()];
                if shadow.remove(&e) {
                    batch.deletions.push(e);
                }
            } else {
                let a = (lcg(rng) % n as u64) as V;
                let b = (lcg(rng) % n as u64) as V;
                if a != b && shadow.insert(Edge::new(a, b)) {
                    batch.insertions.push(Edge::new(a, b));
                }
            }
        }
        engine.apply_into(&batch, delta);
    };
    for _ in 0..4 {
        step(&mut engine, &mut shadow, &mut rng, &mut delta);
    }
    engine.drop_replica(0, 1).unwrap();
    for _ in 0..3 {
        step(&mut engine, &mut shadow, &mut rng, &mut delta);
    }
    engine.restore_replica(0, 1).unwrap();
    // The restored replica replayed the lane's exact input history, so
    // its randomized output is identical to the surviving primary's —
    // a rebuild from the current edge set could not promise that.
    let restored = engine.replica(0, 1).expect("replica must be live again");
    assert_eq!(output_of(restored), output_of(engine.shard(0)));
    assert_eq!(restored.num_live_edges(), engine.shard(0).num_live_edges());
}

// ---------------------------------------------------------------------------
// Compaction: dropping snapshot-covered records must not change what
// recovery rebuilds, and the rolled-forward seed must keep followers
// whole. Runs on the connectivity engine — the WAL is product-agnostic.
// ---------------------------------------------------------------------------

#[test]
fn compacted_log_recovers_exactly_and_reseeds_followers() {
    let n: usize = 48;
    let log = tmp("compact.wal");
    let log_orig = tmp("compact-orig.wal");
    let snap_path = tmp("compact.snap");

    let init: Vec<Edge> = (0..n as V - 1).map(|i| Edge::new(i, i + 1)).collect();
    let mut engine = ShardedEngineBuilder::new(n)
        .shards(3)
        .build_with(&init, move |_, es| BatchConnectivity::builder(n).build(es))
        .unwrap();
    let mut writer = WalWriter::create(
        &log,
        engine.engine_id(),
        engine.layout_epoch(),
        n as u64,
        engine.seq(),
        FsyncPolicy::Manual,
    )
    .unwrap();
    writer
        .append_seed(engine.seq(), &ShardedView::of(&engine).edges())
        .unwrap();

    let mut live: FxHashSet<Edge> = init.iter().copied().collect();
    let mut rng = 0xC0DEC_u64;
    let mut delta = DeltaBuf::new();
    let step = |engine: &mut ShardedEngine<BatchConnectivity, HashPartitioner>,
                writer: &mut WalWriter,
                live: &mut FxHashSet<Edge>,
                rng: &mut u64,
                delta: &mut DeltaBuf| {
        let mut batch = UpdateBatch::default();
        let snapshot: Vec<Edge> = live.iter().copied().collect();
        for k in 0..7 {
            if k % 2 == 0 && !snapshot.is_empty() {
                let e = snapshot[lcg(rng) as usize % snapshot.len()];
                if live.remove(&e) {
                    batch.deletions.push(e);
                }
            } else {
                let a = (lcg(rng) % n as u64) as V;
                let b = (lcg(rng) % n as u64) as V;
                let e = Edge::new(a, b);
                if a != b && !batch.deletions.contains(&e) && live.insert(e) {
                    batch.insertions.push(e);
                }
            }
        }
        writer.append_batch(engine.seq() + 1, &batch).unwrap();
        engine.apply_into(&batch, delta);
        writer.append_delta(delta).unwrap();
    };

    for _ in 0..8 {
        step(&mut engine, &mut writer, &mut live, &mut rng, &mut delta);
    }
    writer.sync().unwrap();
    fs::copy(&log, &log_orig).unwrap();
    let live_at_snap = live.clone();
    let snap = wal::Snapshot::of(&engine);
    snap.write_to(&snap_path).unwrap();

    // A snapshot from a different engine must be refused untouched.
    let len_before = fs::metadata(&log).unwrap().len();
    let mut bogus = snap.clone();
    bogus.engine_id ^= 1;
    assert!(matches!(
        writer.compact(&bogus),
        Err(RecoverError::EngineMismatch { .. })
    ));
    assert_eq!(fs::metadata(&log).unwrap().len(), len_before);

    // Seed + 8 batches + 8 deltas are covered; the log must shrink and
    // re-anchor at the snapshot.
    let dropped = writer.compact(&snap).unwrap();
    assert_eq!(dropped, 17);
    assert!(fs::metadata(&log).unwrap().len() < len_before);
    let rd = WalReader::open(&log).unwrap();
    assert_eq!(rd.header().base_seq, snap.seq);
    // Re-compacting against the same snapshot is a no-op.
    assert_eq!(writer.compact(&snap).unwrap(), 0);

    // The reopened handle keeps appending where the old one left off.
    for _ in 0..4 {
        step(&mut engine, &mut writer, &mut live, &mut rng, &mut delta);
    }
    writer.sync().unwrap();

    let factory = move |_: usize, es: &[Edge]| BatchConnectivity::builder(n).build(es);
    let from_orig = wal::recover(
        &snap_path,
        &log_orig,
        ShardedEngineBuilder::new(n).shards(3),
        factory,
    )
    .unwrap();
    assert_eq!(from_orig.seq, snap.seq);
    assert_eq!(engine_edges(&from_orig.engine), live_at_snap);

    let from_compact = wal::recover(
        &snap_path,
        &log,
        ShardedEngineBuilder::new(n).shards(3),
        factory,
    )
    .unwrap();
    assert_eq!(from_compact.seq, engine.seq());
    assert_eq!(from_compact.replayed, 4);
    assert!(!from_compact.torn_tail);
    assert_eq!(engine_edges(&from_compact.engine), live);

    // Connectivity parity: the recovered engine's unioned shard forests
    // answer exactly like a union-find over the live input edges.
    let view = ShardedView::of(&from_compact.engine);
    let cv = ConnView::from_edges(n, &view.edges());
    let mut uf = bds_graph::UnionFind::new(n);
    for e in &live {
        uf.union(e.u, e.v);
    }
    assert_eq!(cv.num_components(), uf.components());
    for a in 0..n as V {
        for b in (a + 1)..n as V {
            assert_eq!(cv.connected(a, b), uf.same(a, b), "pair ({a},{b})");
        }
    }

    // A follower opening the compacted log reseeds from the rolled-
    // forward seed and tails the retained deltas to the live output.
    let mut fv = wal::FollowerView::open(&log).unwrap();
    fv.catch_up().unwrap();
    assert!(fv.is_seeded());
    assert_eq!(fv.seq(), engine.seq());
    let follower_edges: FxHashSet<Edge> = fv.view().edges().into_iter().collect();
    let primary_edges: FxHashSet<Edge> = ShardedView::of(&engine).edges().into_iter().collect();
    assert_eq!(follower_edges, primary_edges);
}

/// Satellite regression (PR 10, ROADMAP open item): an *already open*
/// `FollowerView` must survive `WalWriter::compact` renaming a new log
/// generation over the path it tails — previously it kept reading the
/// dead inode forever. Three escalating scenarios against one follower:
///
/// 1. Follower caught up past the compaction point: the rewrite is
///    detected on the next idle poll, the view is kept (no re-seed),
///    the retained deltas it already holds are skipped, and tailing
///    continues on the new inode.
/// 2. Follower behind a *double* compaction (the deltas it missed
///    lived only in the intermediate generation): it must re-seed from
///    the rolled-forward `Seed` and converge to the primary exactly.
/// 3. A different engine's log appearing at the path is a hard
///    `EngineMismatch`, not silent divergence.
#[test]
fn open_follower_survives_compaction_rewrite() {
    let n: usize = 40;
    let log = tmp("compact-rewrite.wal");

    let init: Vec<Edge> = (0..n as V - 1).map(|i| Edge::new(i, i + 1)).collect();
    let mut engine = ShardedEngineBuilder::new(n)
        .shards(2)
        .build_with(&init, move |_, es| BatchConnectivity::builder(n).build(es))
        .unwrap();
    let mut writer = WalWriter::create(
        &log,
        engine.engine_id(),
        engine.layout_epoch(),
        n as u64,
        engine.seq(),
        FsyncPolicy::Manual,
    )
    .unwrap();
    writer
        .append_seed(engine.seq(), &ShardedView::of(&engine).edges())
        .unwrap();

    let mut live: FxHashSet<Edge> = init.iter().copied().collect();
    let mut rng = 0xF0110_u64;
    let mut delta = DeltaBuf::new();
    let mut step = |engine: &mut ShardedEngine<BatchConnectivity, HashPartitioner>,
                    writer: &mut WalWriter| {
        let mut batch = UpdateBatch::default();
        let snapshot: Vec<Edge> = live.iter().copied().collect();
        for k in 0..6 {
            if k % 2 == 0 && !snapshot.is_empty() {
                let e = snapshot[lcg(&mut rng) as usize % snapshot.len()];
                if live.remove(&e) {
                    batch.deletions.push(e);
                }
            } else {
                let a = (lcg(&mut rng) % n as u64) as V;
                let b = (lcg(&mut rng) % n as u64) as V;
                if a == b {
                    continue;
                }
                let e = Edge::new(a, b);
                if !batch.deletions.contains(&e) && live.insert(e) {
                    batch.insertions.push(e);
                }
            }
        }
        writer.append_batch(engine.seq() + 1, &batch).unwrap();
        engine.apply_into(&batch, &mut delta);
        writer.append_delta(&delta).unwrap();
    };
    let assert_mirrors = |fv: &wal::FollowerView, engine: &ShardedEngine<_, _>| {
        assert_eq!(fv.seq(), engine.seq());
        let f: FxHashSet<Edge> = fv.view().edges().into_iter().collect();
        let p: FxHashSet<Edge> = ShardedView::of(engine).edges().into_iter().collect();
        assert_eq!(f, p, "follower diverged from primary");
    };

    // Scenario 1: follower fully caught up (seq 8), then compact at a
    // snapshot cut taken at seq 5 — the follower is *ahead* of the new
    // base_seq, so the rewrite must keep its view.
    for _ in 0..5 {
        step(&mut engine, &mut writer);
    }
    let snap5 = wal::Snapshot::of(&engine);
    for _ in 0..3 {
        step(&mut engine, &mut writer);
    }
    writer.sync().unwrap();
    let mut fv = wal::FollowerView::open(&log).unwrap();
    fv.catch_up().unwrap();
    assert_eq!(fv.seq(), 8);
    assert!(writer.compact(&snap5).unwrap() > 0);
    // First idle poll lands on the new generation; the rolled-forward
    // seed and the retained deltas 6..=8 are all ≤ its seq, so nothing
    // is re-applied.
    assert_eq!(fv.catch_up().unwrap(), 0);
    assert!(fv.is_seeded());
    assert_mirrors(&fv, &engine);
    // ...and tailing continues on the new inode.
    step(&mut engine, &mut writer);
    writer.sync().unwrap();
    assert_eq!(fv.catch_up().unwrap(), 1);
    assert_mirrors(&fv, &engine);

    // Scenario 2: double compaction while the follower never polls.
    // The deltas between the two cuts exist only in the intermediate
    // generation the follower never opened, so catching up through the
    // old inode is impossible — it must re-seed from the rolled-forward
    // Seed of the final generation.
    let behind_seq = fv.seq();
    let snap_a = wal::Snapshot::of(&engine);
    writer.compact(&snap_a).unwrap();
    for _ in 0..4 {
        step(&mut engine, &mut writer);
    }
    let snap_b = wal::Snapshot::of(&engine);
    assert!(writer.compact(&snap_b).unwrap() > 0);
    for _ in 0..2 {
        step(&mut engine, &mut writer);
    }
    writer.sync().unwrap();
    assert!(behind_seq < snap_b.seq);
    // Re-seed (edge set at snap_b) + the two live deltas after it.
    let applied = fv.catch_up().unwrap();
    assert_eq!(applied, 2);
    assert!(fv.is_seeded());
    assert_eq!(fv.header().base_seq, snap_b.seq);
    assert_mirrors(&fv, &engine);

    // Scenario 3: a different engine's log at the same path is refused
    // loudly.
    let other = ShardedEngineBuilder::new(n)
        .shards(2)
        .build_with(&init, move |_, es| BatchConnectivity::builder(n).build(es))
        .unwrap();
    let _writer2 = WalWriter::create(
        &log,
        other.engine_id(),
        other.layout_epoch(),
        n as u64,
        other.seq(),
        FsyncPolicy::Manual,
    )
    .unwrap();
    assert!(matches!(
        fv.catch_up(),
        Err(RecoverError::EngineMismatch { .. })
    ));
}
